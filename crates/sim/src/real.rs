//! Wall-clock implementation of [`Runtime`].
//!
//! Used by the examples and integration tests that sync real bytes
//! between real directories. Semantics match [`SimRuntime`]
//! (crate::SimRuntime) except that time is `std::time::Instant` based and
//! threads really sleep.

use std::sync::Arc;
use std::time::{Duration, Instant};

use unidrive_util::sync::{Condvar, Mutex};

use crate::{Notifier, Runtime, Semaphore, Time};

/// A [`Runtime`] backed by the operating system clock and scheduler.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use unidrive_sim::{RealRuntime, Runtime};
///
/// let rt = RealRuntime::new();
/// let t0 = rt.now();
/// rt.sleep(Duration::from_millis(5));
/// assert!(rt.now() - t0 >= Duration::from_millis(5));
/// ```
#[derive(Debug)]
pub struct RealRuntime {
    epoch: Instant,
}

impl RealRuntime {
    /// Creates a runtime whose epoch is "now".
    pub fn new() -> Self {
        RealRuntime {
            epoch: Instant::now(),
        }
    }

    /// Convenience constructor returning a shared trait handle.
    pub fn handle() -> Arc<dyn Runtime> {
        Arc::new(RealRuntime::new())
    }
}

impl Default for RealRuntime {
    fn default() -> Self {
        RealRuntime::new()
    }
}

impl Runtime for RealRuntime {
    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn spawn_raw(&self, name: &str, f: Box<dyn FnOnce() + Send>) {
        std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(f)
            .expect("failed to spawn OS thread");
    }

    fn semaphore(&self, permits: usize) -> Arc<dyn Semaphore> {
        Arc::new(RealSemaphore {
            state: Mutex::new(permits),
            cv: Condvar::new(),
        })
    }

    fn notifier(&self) -> Arc<dyn Notifier> {
        Arc::new(RealNotifier {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        })
    }
}

/// Condvar-based counting semaphore.
#[derive(Debug)]
struct RealSemaphore {
    state: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore for RealSemaphore {
    fn acquire(&self) {
        let mut permits = self.state.lock();
        while *permits == 0 {
            self.cv.wait(&mut permits);
        }
        *permits -= 1;
    }

    fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut permits = self.state.lock();
        while *permits == 0 {
            if self.cv.wait_until(&mut permits, deadline).timed_out() {
                return false;
            }
        }
        *permits -= 1;
        true
    }

    fn try_acquire(&self) -> bool {
        let mut permits = self.state.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    fn release(&self, n: usize) {
        let mut permits = self.state.lock();
        *permits += n;
        if n == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    fn permits(&self) -> usize {
        *self.state.lock()
    }
}

/// Condvar-based eventcount; see [`Notifier`].
#[derive(Debug)]
struct RealNotifier {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Notifier for RealNotifier {
    fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    fn wait(&self, seen: u64) {
        let mut gen = self.generation.lock();
        while *gen == seen {
            self.cv.wait(&mut gen);
        }
    }

    fn wait_timeout(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut gen = self.generation.lock();
        while *gen == seen {
            if self.cv.wait_until(&mut gen, deadline).timed_out() {
                return *gen != seen;
            }
        }
        true
    }

    fn notify_all(&self) {
        let mut gen = self.generation.lock();
        *gen += 1;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spawn;

    #[test]
    fn semaphore_hands_off_between_threads() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let sem = rt.semaphore(0);
        let sem2 = Arc::clone(&sem);
        let task = spawn(&rt, "releaser", move || {
            sem2.release(1);
            7
        });
        sem.acquire();
        assert_eq!(task.join(), 7);
    }

    #[test]
    fn acquire_timeout_expires() {
        let rt = RealRuntime::new();
        let sem = rt.semaphore(0);
        assert!(!sem.acquire_timeout(Duration::from_millis(10)));
        sem.release(1);
        assert!(sem.acquire_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn try_acquire_counts_permits() {
        let rt = RealRuntime::new();
        let sem = rt.semaphore(2);
        assert!(sem.try_acquire());
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        assert_eq!(sem.permits(), 0);
    }
}
