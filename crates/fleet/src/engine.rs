//! The fleet engine: a conservative parallel discrete-event simulator
//! over 100k+ lightweight device actors.
//!
//! # Execution model
//!
//! One global [`Calendar`] holds at most one pending event per device.
//! The run loop repeatedly pops a *window* `[t, t + LOOKAHEAD)` of due
//! events, partitions it by `device % shards`, fans the shard lists out
//! on a [`WorkerPool`] (the parallel phase computes per-device
//! *intents* and touches only that shard's device map), then k-way
//! merges the intents back into `(time, device, seq)` order and
//! applies them sequentially against global state (folders, per-cloud
//! shapers, the calendar itself).
//!
//! Determinism rests on three rules:
//!
//! 1. **Lookahead** — every scheduling delay is clamped to at least
//!    [`LOOKAHEAD_NS`], so no event popped in a window can have been
//!    caused by another event in the same window. The parallel phase
//!    is therefore causally closed.
//! 2. **Shard-blind randomness** — every draw comes from a stream
//!    derived from `(seed, device, activation)`; shard identity and
//!    thread identity never feed an RNG. Shards are a pure work
//!    partition, so metrics are byte-identical at 1, 4, or 16 shards.
//! 3. **Fixed draws in the parallel phase only** — each event kind
//!    consumes a deterministic draw sequence from its device's own
//!    stream before the merge decides any outcome; the merge phase
//!    never draws.
//!
//! # Session protocol
//!
//! A session is upload-then-commit, the shape a real sync client uses
//! so a slow transfer never holds the folder lock: `Arrive` starts the
//! erasure-coded upload of the payload shares (duration modeled from
//! per-site/provider rates, the fault plan, and QPS shaping); when the
//! upload lands, `Attempt` rounds contend for the folder's quorum lock
//! to commit the new version — the critical section is the short
//! metadata commit, not the transfer; `Release` publishes and folds
//! the device back to idle.
//!
//! # Lazy materialization
//!
//! An idle device is one 32-byte calendar entry. Full per-device state
//! ([`ActiveDevice`]) exists only between `Arrive` and `Release`, in a
//! per-shard `HashMap` keyed by device id — so peak memory tracks the
//! number of *concurrent sessions*, not the population size.

use std::collections::HashMap;
use std::sync::Mutex;

use unidrive_cloud::{
    CloudOp, FaultKind, FaultPlan, HealthConfig, HealthTracker, TokenBucket,
};
use unidrive_meta::MetaMode;
use unidrive_obs::{Histogram, SeriesBank};
use unidrive_sim::shard::{merge_by_key, partition_window, shard_of, Calendar, Entry};
use unidrive_sim::SimRng;
use unidrive_util::pool::WorkerPool;
use unidrive_workload::{nominal_rates, DeviceClass, Provider, Zipf, EC2_SITES};

use crate::config::FleetConfig;
use crate::metrics::{CloudRow, FleetMetrics, FLEET_SERIES_WINDOW_NS};

/// The total order intents are merged and applied in:
/// `(time_ns, lane, seq)` as produced by `Entry::key`.
type MergeKey = (u64, u64, u64);

/// Conservative lookahead: every scheduled delay is at least this, so
/// a window's events are causally independent of each other.
pub const LOOKAHEAD_NS: u64 = 250_000_000;

const NS_PER_SEC: u64 = 1_000_000_000;
/// Erasure split: n = 5 providers, k = 3 data shares → each cloud
/// carries `bytes / k` of a session payload.
const ERASURE_K: u64 = 3;
/// Quorum size for the lock protocol (majority of 5).
const QUORUM_K: usize = 3;
/// Request granularity: one upload/download op per 256 KiB chunk.
const OP_CHUNK_BYTES: u64 = 256 * 1024;
/// Lock round cost: one upload (lock file) + one list per cloud.
const LOCK_OPS: u64 = 2;
/// Oplog commit cost: one append (full-replace upload) per cloud.
const OPLOG_APPEND_OPS: u64 = 1;
/// Oplog compaction cost per cloud: lock file + base upload + trim.
const OPLOG_COMPACT_OPS: u64 = 3;
/// λ threshold in op count: a folder's accumulated ops trigger a base
/// compaction (the analytic mirror of `delta_ratio`/`delta_floor`).
const OPLOG_COMPACT_EVERY: u64 = 64;
/// Escalation multiple: once a folder's pending-op backlog reaches
/// `OPLOG_COMPACT_ESCALATE × OPLOG_COMPACT_EVERY`, a committer stops
/// deferring to the advisory compaction lock and barges — waiting out
/// the holder's bounded window, then folding (the analytic mirror of
/// core's forced-compaction retries past its escalate threshold).
const OPLOG_COMPACT_ESCALATE: u64 = 4;
/// Metadata commit under the lock: version write + lock release.
const COMMIT_NS: u64 = 500_000_000;
/// Drain guard: give the fleet at most this many pull rounds.
const MAX_DRAIN_ROUNDS: u32 = 3;

/// Events a device can have pending. Exactly one per device at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// A sync session begins; `activation` derives the session stream.
    Arrive { activation: u32 },
    /// One quorum-lock commit round for the uploaded session.
    Attempt { attempt: u32 },
    /// Commit finished; publish and fold the device back to idle.
    Release,
    /// Drain-phase download of missed hot-folder writes.
    Pull { folder: u32 },
}

/// Materialized state of a device mid-session.
#[derive(Debug)]
struct ActiveDevice {
    /// The session's private random stream.
    rng: SimRng,
    /// Session arrival time (latency measurement origin).
    t0_ns: u64,
    /// When the upload landed and lock contention began.
    wait_start_ns: u64,
    /// Session payload, bytes.
    bytes: u64,
    /// Activity class (drawn once per session; stable per device).
    class: DeviceClass,
    /// Hot-folder rank, or `None` for a private folder.
    hot: Option<u32>,
    /// Activation counter (for the next `Arrive` derivation).
    activation: u32,
    /// Whether this session already tripped the starvation audit.
    starved: bool,
}

/// A shared hot folder: quorum-lock scope plus per-member sync
/// watermarks for the no-lost-acks and convergence invariants.
#[derive(Debug, Default)]
struct HotFolder {
    holder: Option<u64>,
    version: u64,
    cum_bytes: u64,
    /// Member device → cumulative bytes it has acknowledged.
    member_synced: HashMap<u64, u64>,
    /// Oplog mode: ops appended since the last base compaction.
    pending_ops: u64,
    /// Oplog mode: compaction lock held until this virtual time
    /// (compaction is the only quorum-lock user in oplog mode; a
    /// contended attempt skips, matching core's best-effort policy).
    compact_lock_until_ns: u64,
}

/// Per-provider accounting lane.
#[derive(Debug)]
struct CloudLane {
    name: &'static str,
    bucket: TokenBucket,
    series: unidrive_cloud::QpsSeries,
    lock_ops: u64,
    transfer_ops: u64,
    bytes_up: u64,
    bytes_down: u64,
    throttle_delay_ns: u64,
    /// Availability scoreboard, fed by the serial apply phase: every
    /// op charged to this lane is an ok sample, every op a session
    /// wanted but could not place (the lane was unreachable) an error.
    health: HealthTracker,
}

/// What the parallel phase hands to the merge phase for one event.
/// All random draws have already happened; the merge only combines
/// them with global state.
#[derive(Debug)]
enum Intent {
    Start {
        device: u64,
        hot: Option<u32>,
        bytes: u64,
        site: usize,
        activation: u32,
        /// Unreachable-retry jitter in `[0, 1)`.
        retry_u: f64,
        /// One draw per provider for per-cloud fault coin flips.
        cloud_us: [f64; 5],
        /// Upload reachability per provider at this instant.
        reachable: [bool; 5],
    },
    Attempt {
        device: u64,
        hot: Option<u32>,
        attempt: u32,
        wait_start_ns: u64,
        /// Backoff / defer-delay position in `[0, 1)`.
        backoff_u: f64,
        /// Unreachable-retry jitter in `[0, 1)`.
        retry_u: f64,
        /// Upload reachability per provider at this instant.
        reachable: [bool; 5],
    },
    Release {
        device: u64,
        hot: Option<u32>,
        bytes: u64,
        t0_ns: u64,
        activation: u32,
        /// Pre-drawn gap to the next session; `None` = permanent churn.
        next_gap_secs: Option<f64>,
    },
    Pull {
        device: u64,
        folder: u32,
        site: usize,
    },
}

/// Read-only context the parallel phase works against.
struct Shared<'a> {
    cfg: &'a FleetConfig,
    zipf: &'a Zipf,
    plan: &'a FaultPlan,
}

/// Deterministic "diurnal" rate flux: provider throughput wobbles by
/// up to 22% across 10-minute slots, out of phase per provider. Pure
/// integer→float arithmetic — no trig, no platform variance.
fn rate_flux(provider_idx: usize, now_ns: u64) -> f64 {
    let slot = now_ns / (600 * NS_PER_SEC);
    let phase = (slot.wrapping_mul(7) + provider_idx as u64 * 5) % 13;
    1.0 - 0.22 * (phase as f64 / 12.0)
}

/// Stable site assignment: a multiplicative hash of the device id, so
/// the mapping is independent of shard layout and of every RNG stream.
fn site_of(device: u64) -> usize {
    (device.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % EC2_SITES.len()
}

/// Upload reachability of each provider at `now_ns` under `plan`:
/// an active `Outage` or `QuotaExhausted` window makes writes fail.
fn upload_reachability(plan: &FaultPlan, now_ns: u64) -> [bool; 5] {
    let mut ok = [true; 5];
    for (i, p) in Provider::ALL.iter().enumerate() {
        for ev in &plan.events {
            if ev.cloud == p.name()
                && ev.applies(now_ns, CloudOp::Upload)
                && matches!(ev.kind, FaultKind::Outage | FaultKind::QuotaExhausted)
            {
                ok[i] = false;
            }
        }
    }
    ok
}

/// Scores one failed probe on every lane the event wanted but could
/// not reach: the provider was refusing writes, which is exactly what
/// a client-side prober would report. Reachable lanes are scored at
/// the points where ops are actually charged to them.
fn record_unreachable(
    lanes: &mut [CloudLane],
    reachable: &[bool; 5],
    t: u64,
    m: &mut FleetMetrics,
) {
    for (i, lane) in lanes.iter_mut().enumerate() {
        if !reachable[i] {
            lane.health.record(t, 0, false);
            m.series.add("cloud.err", lane.name, t, 1);
        }
    }
}

/// The fleet simulator. Construct with a [`FleetConfig`], call
/// [`run`](FleetSim::run), inspect the returned [`FleetMetrics`].
#[derive(Debug)]
pub struct FleetSim {
    cfg: FleetConfig,
}

impl FleetSim {
    /// A simulator for `cfg`.
    pub fn new(cfg: FleetConfig) -> FleetSim {
        FleetSim { cfg }
    }

    /// Runs the simulation to convergence and returns fleet metrics.
    /// Same config (including seed) ⇒ byte-identical metrics JSON,
    /// regardless of `shards` and `threads`.
    pub fn run(&self) -> FleetMetrics {
        let cfg = &self.cfg;
        let shards = cfg.shards.max(1);
        let horizon_ns = cfg.horizon_ns();
        let zipf = Zipf::new(cfg.hot_folders.max(1) as usize, cfg.profile.hot_zipf_s);
        let plan = &cfg.fault_plan;

        // Per-site × per-provider nominal rates, bytes/sec.
        let rates: Vec<[(f64, f64); 5]> = EC2_SITES
            .iter()
            .map(|site| {
                let mut row = [(0.0, 0.0); 5];
                for (i, p) in Provider::ALL.iter().enumerate() {
                    row[i] = nominal_rates(*site, *p);
                }
                row
            })
            .collect();

        let mut lanes: Vec<CloudLane> = Provider::ALL
            .iter()
            .map(|p| CloudLane {
                name: p.name(),
                bucket: TokenBucket::new(cfg.cloud_qps, cfg.cloud_burst),
                series: unidrive_cloud::QpsSeries::new(),
                lock_ops: 0,
                transfer_ops: 0,
                bytes_up: 0,
                bytes_down: 0,
                throttle_delay_ns: 0,
                health: HealthTracker::new(
                    p.name(),
                    HealthConfig {
                        window_ns: FLEET_SERIES_WINDOW_NS,
                        ..HealthConfig::default()
                    },
                ),
            })
            .collect();

        let mut folders: Vec<HotFolder> =
            (0..cfg.hot_folders).map(|_| HotFolder::default()).collect();

        let maps: Vec<Mutex<HashMap<u64, ActiveDevice>>> =
            (0..shards).map(|_| Mutex::new(HashMap::new())).collect();

        let mut metrics = FleetMetrics::new(cfg);
        let mut calendar: Calendar<Ev> = Calendar::new();

        // Seed the calendar: each device's first arrival is uniform in
        // [LOOKAHEAD, horizon), from its own derived bootstrap stream.
        for d in 0..cfg.devices as u64 {
            let mut rng = SimRng::derive(cfg.seed, &format!("fleet/boot/{d}"));
            let t = ((rng.next_f64() * horizon_ns as f64) as u64).max(LOOKAHEAD_NS);
            if t < horizon_ns {
                calendar.push(t, d, Ev::Arrive { activation: 0 });
            }
        }

        let pool = if cfg.threads == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(cfg.threads)
        };
        let shared = Shared {
            cfg,
            zipf: &zipf,
            plan,
        };

        let sync_latency = Histogram::default();
        let lock_wait = Histogram::default();
        let lock_rounds = Histogram::default();

        let mut now_ns: u64 = 0;
        let mut drain_rounds: u32 = 0;
        // Safety valves — a logic bug must FAIL an invariant, not hang.
        let max_events: u64 = (cfg.devices as u64).saturating_mul(2_000).max(10_000_000);
        let max_virtual_ns = horizon_ns.saturating_mul(20);
        let mut overrun = false;

        loop {
            if calendar.is_empty() {
                // Drain: schedule catch-up pulls for lagging members.
                let mut pulls: Vec<(u64, u32)> = Vec::new();
                for (fi, f) in folders.iter().enumerate() {
                    let mut lagging: Vec<u64> = f
                        .member_synced
                        .iter()
                        .filter(|(_, &synced)| synced < f.cum_bytes)
                        .map(|(&d, _)| d)
                        .collect();
                    lagging.sort_unstable();
                    pulls.extend(lagging.into_iter().map(|d| (d, fi as u32)));
                }
                if pulls.is_empty() || drain_rounds >= MAX_DRAIN_ROUNDS {
                    if !pulls.is_empty() {
                        overrun = true;
                    }
                    break;
                }
                drain_rounds += 1;
                let at = now_ns + LOOKAHEAD_NS;
                for (d, folder) in pulls {
                    calendar.push(at, d, Ev::Pull { folder });
                }
            }

            let t = calendar.next_time().expect("calendar non-empty");
            now_ns = now_ns.max(t);
            if metrics.events_processed > max_events || now_ns > max_virtual_ns {
                overrun = true;
                break;
            }
            let window = calendar.pop_window(t + LOOKAHEAD_NS);
            metrics.windows += 1;
            metrics.events_processed += window.len() as u64;

            // Parallel phase: per-shard intent computation. Shard i
            // touches only maps[i]; all RNG draws happen here. Each
            // shard rolls its workload series into a private bank.
            let parts = partition_window(window, shards);
            let sharded: Vec<(Vec<(MergeKey, Intent)>, SeriesBank)> =
                pool.par_map_indexed(&parts, |si, part| {
                    let mut out = Vec::with_capacity(part.len());
                    let mut bank = SeriesBank::new(FLEET_SERIES_WINDOW_NS);
                    let mut map = maps[si].lock().expect("shard map poisoned");
                    for e in part {
                        out.push((e.key(), shard_phase(e, &mut map, &shared, &mut bank)));
                    }
                    (out, bank)
                });

            // Fold the per-shard banks into the global series at the
            // window boundary. Every window fold is commutative and
            // associative (sums, min/max, bucket unions keyed by
            // absolute window index), and sharding only partitions the
            // event set, so the merged content — and therefore the
            // exported bytes — is identical at any shard/thread count.
            let mut intents = Vec::with_capacity(sharded.len());
            for (list, bank) in sharded {
                metrics.series.merge_from(&bank);
                intents.push(list);
            }

            // Merge phase: apply intents in global (time, device, seq)
            // order against folders, lanes, calendar, metrics.
            for (key, intent) in merge_by_key(intents, |(k, _)| *k) {
                self.apply(
                    key.0,
                    intent,
                    &mut folders,
                    &mut lanes,
                    &mut calendar,
                    &maps,
                    &mut metrics,
                    &rates,
                    horizon_ns,
                    &sync_latency,
                    &lock_wait,
                    &lock_rounds,
                );
            }
        }

        metrics.virtual_end_ns = now_ns;
        metrics.drain_rounds = drain_rounds;
        self.finish(
            metrics,
            &folders,
            &maps,
            &mut lanes,
            overrun,
            sync_latency,
            lock_wait,
            lock_rounds,
        )
    }

    /// Merge-phase application of one intent. Sequential; no RNG.
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        t: u64,
        intent: Intent,
        folders: &mut [HotFolder],
        lanes: &mut [CloudLane],
        calendar: &mut Calendar<Ev>,
        maps: &[Mutex<HashMap<u64, ActiveDevice>>],
        m: &mut FleetMetrics,
        rates: &[[(f64, f64); 5]],
        horizon_ns: u64,
        sync_latency: &Histogram,
        lock_wait: &Histogram,
        lock_rounds: &Histogram,
    ) {
        let cfg = &self.cfg;
        match intent {
            Intent::Start {
                device,
                hot,
                bytes,
                site,
                activation,
                retry_u,
                cloud_us,
                reachable,
            } => {
                record_unreachable(lanes, &reachable, t, m);
                let n_reachable = reachable.iter().filter(|&&r| r).count();
                if n_reachable < QUORUM_K {
                    // Not enough providers accept writes: the upload
                    // cannot reach quorum durability. Retry the session
                    // start once the outage window has a chance to end.
                    m.bump("upload.unreachable_rounds");
                    let delay =
                        30 * NS_PER_SEC + (retry_u * 5.0 * NS_PER_SEC as f64) as u64;
                    calendar.push(t + delay, device, Ev::Arrive { activation });
                    return;
                }
                m.bump("sessions.started");
                m.series.add("fleet.sessions", "started", t, 1);
                if let Some(rank) = hot {
                    let f = &mut folders[rank as usize];
                    // A joining member snapshots the folder: history
                    // backfill is out of band; lag accrues only for
                    // writes it subsequently misses.
                    f.member_synced.entry(device).or_insert(f.cum_bytes);
                }

                // Erasure-coded upload of one share per reachable
                // cloud; the slowest share gates the transfer.
                let share = bytes.div_ceil(ERASURE_K);
                let ops = share.div_ceil(OP_CHUNK_BYTES) + 2;
                let mut slowest = 0.0f64;
                let mut ack_extra_ns = 0u64;
                let mut qps_delay = 0u64;
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if !reachable[i] {
                        continue;
                    }
                    let up = rates[site][i].0 * rate_flux(i, t);
                    let mut dur = share as f64 / up.max(1.0);
                    for ev in &self.cfg.fault_plan.events {
                        if ev.cloud != lane.name || !ev.applies(t, CloudOp::Upload) {
                            continue;
                        }
                        match ev.kind {
                            FaultKind::TransientBurst { probability } => {
                                // Retries inflate effective transfer
                                // time by the geometric mean 1/(1-p).
                                dur /= 1.0 - probability.min(0.8);
                                m.bump("fault.burst_slowdowns");
                            }
                            FaultKind::LatencySpike { extra_ms } => {
                                dur += (extra_ms as f64 / 1_000.0) * ops as f64;
                            }
                            FaultKind::TornUpload { probability } => {
                                if cloud_us[i] < probability {
                                    // Torn write detected by digest
                                    // check; one repair pass.
                                    dur *= 1.3;
                                    m.bump("fault.torn_repairs");
                                }
                            }
                            FaultKind::DelayedVisibility => {
                                ack_extra_ns = ack_extra_ns.max(2 * NS_PER_SEC);
                                m.bump("fault.delayed_acks");
                            }
                            FaultKind::Outage | FaultKind::QuotaExhausted => {}
                        }
                    }
                    slowest = slowest.max(dur);
                    let d = lane.bucket.consume(t, ops);
                    lane.transfer_ops += ops;
                    lane.bytes_up += share;
                    lane.throttle_delay_ns += d;
                    qps_delay = qps_delay.max(d);
                    // Record at post-shaper times: the series reports
                    // when ops actually clear, not the offered spike.
                    let start = t + d;
                    lane.series.record_spread(
                        start,
                        start + (dur * NS_PER_SEC as f64) as u64,
                        ops,
                    );
                    // Health sees the share transfer (shaper delay
                    // included) as one successful timed op.
                    let xfer_ns = ((dur * NS_PER_SEC as f64) as u64).saturating_add(d);
                    lane.health.record(t, xfer_ns, true);
                    m.series.add("cloud.ops", lane.name, t, ops);
                    m.series.add("cloud.bytes_up", lane.name, t, share);
                    m.series.observe("cloud.op_ns", lane.name, t, xfer_ns);
                }
                let duration = ((slowest * NS_PER_SEC as f64) as u64)
                    .saturating_add(qps_delay)
                    .saturating_add(ack_extra_ns)
                    .max(LOOKAHEAD_NS);
                calendar.push(t + duration, device, Ev::Attempt { attempt: 0 });
            }
            Intent::Attempt {
                device,
                hot,
                attempt,
                wait_start_ns,
                backoff_u,
                retry_u,
                reachable,
            } => {
                record_unreachable(lanes, &reachable, t, m);
                let n_reachable = reachable.iter().filter(|&&r| r).count();
                if n_reachable < QUORUM_K {
                    // Quorum unreachable: back off and retry the same
                    // round once the outage window has a chance to end.
                    m.bump("lock.unreachable_rounds");
                    let delay =
                        30 * NS_PER_SEC + (retry_u * 5.0 * NS_PER_SEC as f64) as u64;
                    calendar.push(t + delay, device, Ev::Attempt { attempt });
                    return;
                }

                if cfg.meta_mode == MetaMode::Oplog {
                    // Oplog commit: append the device's op file on
                    // every reachable cloud. No lock round, no losers —
                    // every attempt commits on its first round.
                    let mut qps_delay = 0u64;
                    for (i, lane) in lanes.iter_mut().enumerate() {
                        if reachable[i] {
                            let d = lane.bucket.consume(t, OPLOG_APPEND_OPS);
                            lane.series.record(t + d, OPLOG_APPEND_OPS);
                            lane.lock_ops += OPLOG_APPEND_OPS;
                            lane.throttle_delay_ns += d;
                            qps_delay = qps_delay.max(d);
                            lane.health.record(t, d.saturating_add(COMMIT_NS), true);
                            m.series.add("cloud.ops", lane.name, t, OPLOG_APPEND_OPS);
                        }
                    }
                    m.bump("oplog.appends");
                    m.series.add("oplog.appends", "fleet", t, 1);
                    let mut commit = COMMIT_NS.saturating_add(qps_delay);
                    if let Some(rank) = hot {
                        let f = &mut folders[rank as usize];
                        f.pending_ops += 1;
                        if f.pending_ops >= OPLOG_COMPACT_EVERY {
                            if t >= f.compact_lock_until_ns {
                                // λ tripped: fold the log into a new
                                // base under a short quorum lock held
                                // only for the rewrite.
                                for (i, lane) in lanes.iter_mut().enumerate() {
                                    if reachable[i] {
                                        let d =
                                            lane.bucket.consume(t, OPLOG_COMPACT_OPS);
                                        lane.series.record(t + d, OPLOG_COMPACT_OPS);
                                        lane.lock_ops += OPLOG_COMPACT_OPS;
                                        lane.throttle_delay_ns += d;
                                        m.series.add(
                                            "cloud.ops",
                                            lane.name,
                                            t,
                                            OPLOG_COMPACT_OPS,
                                        );
                                    }
                                }
                                f.pending_ops = 0;
                                f.compact_lock_until_ns = t + 2 * COMMIT_NS;
                                commit = commit.saturating_add(COMMIT_NS);
                                m.bump("oplog.compactions");
                                m.series.add("oplog.compactions", "fleet", t, 1);
                            } else if f.pending_ops
                                >= OPLOG_COMPACT_ESCALATE * OPLOG_COMPACT_EVERY
                            {
                                // Backlog past the escalate threshold:
                                // barge — wait out the remainder of the
                                // holder's bounded window, then fold.
                                // `oplog.compact_overdue` (a forced fold
                                // that still failed) cannot occur here,
                                // because the advisory hold is bounded
                                // by 2×COMMIT_NS; the counter is zero-
                                // initialized for schema parity with
                                // the core plane, which can time out.
                                let wait = f.compact_lock_until_ns - t;
                                for (i, lane) in lanes.iter_mut().enumerate() {
                                    if reachable[i] {
                                        let d =
                                            lane.bucket.consume(t, OPLOG_COMPACT_OPS);
                                        lane.series.record(t + d, OPLOG_COMPACT_OPS);
                                        lane.lock_ops += OPLOG_COMPACT_OPS;
                                        lane.throttle_delay_ns += d;
                                        m.series.add(
                                            "cloud.ops",
                                            lane.name,
                                            t,
                                            OPLOG_COMPACT_OPS,
                                        );
                                    }
                                }
                                f.pending_ops = 0;
                                f.compact_lock_until_ns = t + wait + 2 * COMMIT_NS;
                                commit = commit
                                    .saturating_add(wait)
                                    .saturating_add(COMMIT_NS);
                                m.bump("oplog.compactions");
                                m.bump("oplog.compact_forced");
                                m.series.add("oplog.compactions", "fleet", t, 1);
                                m.series.add("oplog.compact_forced", "fleet", t, 1);
                            } else {
                                // Another device is compacting; the
                                // append stands, the fold waits.
                                m.bump("oplog.compact_skipped");
                            }
                        }
                    }
                    lock_wait.record(t.saturating_sub(wait_start_ns));
                    lock_rounds.record(attempt as u64 + 1);
                    m.series.observe(
                        "fleet.lock_wait_ns",
                        cfg.meta_mode.as_str(),
                        t,
                        t.saturating_sub(wait_start_ns),
                    );
                    calendar.push(t + commit.max(LOOKAHEAD_NS), device, Ev::Release);
                    return;
                }

                // One lock round costs LOCK_OPS on every reachable
                // cloud; the shaper's worst delay gates the round.
                let mut qps_delay = 0u64;
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if reachable[i] {
                        let d = lane.bucket.consume(t, LOCK_OPS);
                        lane.series.record(t + d, LOCK_OPS);
                        lane.lock_ops += LOCK_OPS;
                        lane.throttle_delay_ns += d;
                        qps_delay = qps_delay.max(d);
                        lane.health.record(t, d.saturating_add(COMMIT_NS), true);
                        m.series.add("cloud.ops", lane.name, t, LOCK_OPS);
                    }
                }

                let won = match hot {
                    None => true,
                    Some(rank) => {
                        let f = &mut folders[rank as usize];
                        if f.holder.is_none() {
                            f.holder = Some(device);
                            true
                        } else {
                            false
                        }
                    }
                };

                if !won {
                    m.bump("lock.contended_rounds");
                    m.series.add("lock.contended", "fleet", t, 1);
                    // Starvation audit, mirroring the core lock path:
                    // flag (once) any acquire waiting past the bound.
                    let waited = t.saturating_sub(wait_start_ns);
                    if waited >= cfg.lock.starvation_audit.as_nanos() as u64 {
                        let mut map =
                            maps[shard_of(device, maps.len())].lock().expect("map");
                        let dev = map.get_mut(&device).expect("losing device is active");
                        if !dev.starved {
                            dev.starved = true;
                            m.bump("lock.starved");
                            m.series.add("lock.starved", "fleet", t, 1);
                        }
                    }
                    let next = attempt + 1;
                    if next >= cfg.lock.max_attempts {
                        // Exhausted: defer the commit and start a fresh
                        // acquire cycle later.
                        m.bump("lock.exhausted");
                        m.bump("sessions.deferred");
                        m.series.add("fleet.sessions", "deferred", t, 1);
                        let defer =
                            (60.0 * NS_PER_SEC as f64 * (1.0 + backoff_u)) as u64;
                        calendar.push(t + defer, device, Ev::Attempt { attempt: 0 });
                    } else {
                        let cap_ns = cfg
                            .lock
                            .backoff_max
                            .min(cfg.lock.backoff_base * 2u32.saturating_pow(attempt))
                            .as_nanos() as u64;
                        let backoff = ((backoff_u * cap_ns as f64) as u64)
                            .saturating_add(qps_delay)
                            .max(LOOKAHEAD_NS);
                        calendar.push(t + backoff, device, Ev::Attempt { attempt: next });
                    }
                    return;
                }

                // Lock granted: hold it only for the metadata commit.
                m.bump("lock.acquired");
                lock_wait.record(t.saturating_sub(wait_start_ns));
                lock_rounds.record(attempt as u64 + 1);
                m.series.observe(
                    "fleet.lock_wait_ns",
                    cfg.meta_mode.as_str(),
                    t,
                    t.saturating_sub(wait_start_ns),
                );
                let commit = COMMIT_NS.saturating_add(qps_delay).max(LOOKAHEAD_NS);
                calendar.push(t + commit, device, Ev::Release);
            }
            Intent::Release {
                device,
                hot,
                bytes,
                t0_ns,
                activation,
                next_gap_secs,
            } => {
                if let Some(rank) = hot {
                    let f = &mut folders[rank as usize];
                    if cfg.meta_mode == MetaMode::Lock {
                        // Oplog commits never held the folder lock, so
                        // the holder invariant only applies here.
                        if f.holder != Some(device) {
                            m.bump("invariant.holder_violations");
                        }
                        f.holder = None;
                    }
                    f.version += 1;
                    f.cum_bytes += bytes;
                    // The writer trivially has its own write; a push
                    // implies a pull-first in the sync protocol, so it
                    // is also caught up on everything earlier.
                    f.member_synced.insert(device, f.cum_bytes);
                }
                m.bump("sessions.completed");
                m.add("bytes.synced", bytes);
                sync_latency.record(t.saturating_sub(t0_ns));
                m.series.add("fleet.sessions", "completed", t, 1);
                m.series.observe(
                    "fleet.sync_latency_ns",
                    cfg.meta_mode.as_str(),
                    t,
                    t.saturating_sub(t0_ns),
                );

                maps[shard_of(device, maps.len())]
                    .lock()
                    .expect("map")
                    .remove(&device);

                match next_gap_secs {
                    None => m.bump("devices.churned"),
                    Some(gap) => {
                        let gap_ns =
                            ((gap * NS_PER_SEC as f64) as u64).max(LOOKAHEAD_NS);
                        let at = t + gap_ns;
                        if at < horizon_ns {
                            calendar.push(
                                at,
                                device,
                                Ev::Arrive {
                                    activation: activation + 1,
                                },
                            );
                        }
                    }
                }
            }
            Intent::Pull {
                device,
                folder,
                site,
            } => {
                let f = &mut folders[folder as usize];
                let lag = f
                    .cum_bytes
                    .saturating_sub(*f.member_synced.get(&device).unwrap_or(&0));
                if lag > 0 {
                    // Download the erasure share of the missed bytes
                    // from a read quorum (all clouds reachable: drain
                    // runs after every fault window has closed). The
                    // quorum rotates by device id so drain load spreads
                    // across all five providers.
                    let share = lag.div_ceil(ERASURE_K);
                    let ops = share.div_ceil(OP_CHUNK_BYTES) + 1;
                    for j in 0..QUORUM_K {
                        let i = (device as usize + j) % lanes.len();
                        let lane = &mut lanes[i];
                        let down = rates[site][i].1 * rate_flux(i, t);
                        let dur = share as f64 / down.max(1.0);
                        let d = lane.bucket.consume(t, ops);
                        lane.transfer_ops += ops;
                        lane.bytes_down += share;
                        lane.throttle_delay_ns += d;
                        let start = t + d;
                        lane.series.record_spread(
                            start,
                            start + (dur * NS_PER_SEC as f64) as u64,
                            ops,
                        );
                        let xfer_ns =
                            ((dur * NS_PER_SEC as f64) as u64).saturating_add(d);
                        lane.health.record(t, xfer_ns, true);
                        m.series.add("cloud.ops", lane.name, t, ops);
                        m.series.add("cloud.bytes_down", lane.name, t, share);
                        m.series.observe("cloud.op_ns", lane.name, t, xfer_ns);
                    }
                    f.member_synced.insert(device, f.cum_bytes);
                    m.bump("drain.pulls");
                    m.add("bytes.pulled", lag);
                }
            }
        }
    }

    /// Final invariant evaluation and metric assembly.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        mut m: FleetMetrics,
        folders: &[HotFolder],
        maps: &[Mutex<HashMap<u64, ActiveDevice>>],
        lanes: &mut [CloudLane],
        overrun: bool,
        sync_latency: Histogram,
        lock_wait: Histogram,
        lock_rounds: Histogram,
    ) -> FleetMetrics {
        let residual_active: usize =
            maps.iter().map(|mx| mx.lock().expect("map").len()).sum();
        let held: usize = folders.iter().filter(|f| f.holder.is_some()).count();
        let lagging: usize = folders
            .iter()
            .map(|f| {
                f.member_synced
                    .values()
                    .filter(|&&s| s < f.cum_bytes)
                    .count()
            })
            .sum();
        let members: u64 = folders.iter().map(|f| f.member_synced.len() as u64).sum();
        let started = m.counter("sessions.started");
        let completed = m.counter("sessions.completed");

        m.set("folders.members", members);
        m.set(
            "folders.versions",
            folders.iter().map(|f| f.version).sum::<u64>(),
        );
        m.invariant(
            "single_lock_holder",
            m.counter("invariant.holder_violations") == 0 && held == 0,
            format!(
                "{} holder violations, {held} locks still held",
                m.counter("invariant.holder_violations")
            ),
        );
        m.invariant(
            "no_lost_acks",
            lagging == 0,
            format!("{lagging} members behind their folder head"),
        );
        m.invariant(
            "session_conservation",
            started == completed && residual_active == 0,
            format!("{started} started, {completed} completed, {residual_active} residual"),
        );
        m.invariant(
            "converged",
            !overrun,
            if overrun {
                "event/time/drain safety valve tripped".to_owned()
            } else {
                "calendar drained inside budget".to_owned()
            },
        );

        m.sync_latency = sync_latency.snapshot();
        m.lock_wait = lock_wait.snapshot();
        m.lock_rounds = lock_rounds.snapshot();

        // Close each lane's health tracker at the virtual end time and
        // render the scoreboard rows, sorted by cloud name so the
        // export order is independent of `Provider::ALL` ordering.
        let mut rows: Vec<(String, String)> = lanes
            .iter_mut()
            .map(|l| {
                l.health.finish(m.virtual_end_ns);
                (l.name.to_owned(), l.health.to_json())
            })
            .collect();
        rows.sort();
        m.health_rows = rows.into_iter().map(|(_, row)| row).collect();

        m.clouds = lanes
            .iter()
            .map(|l| CloudRow {
                name: l.name.to_owned(),
                ops: l.lock_ops + l.transfer_ops,
                lock_ops: l.lock_ops,
                transfer_ops: l.transfer_ops,
                bytes_up: l.bytes_up,
                bytes_down: l.bytes_down,
                throttle_delay_ns: l.throttle_delay_ns,
                qps_peak: l.series.peak(),
                qps_mean: l.series.mean(),
            })
            .collect();
        m
    }
}

/// Parallel phase for one event: all RNG draws for the event happen
/// here, against the device's own stream; global state is read-only.
/// Workload-shaped series (arrivals by class, session sizes, attempt
/// and pull volume) roll into the shard's private `bank`, merged into
/// the global series at the window boundary.
fn shard_phase(
    e: &Entry<Ev>,
    map: &mut HashMap<u64, ActiveDevice>,
    ctx: &Shared<'_>,
    bank: &mut SeriesBank,
) -> Intent {
    let cfg = ctx.cfg;
    let device = e.lane;
    match &e.event {
        Ev::Arrive { activation } => {
            // Fixed draw sequence: session bytes, retry jitter, one
            // coin per provider. An unreachable-retry re-derives the
            // same stream and gets the same values — deterministic by
            // construction.
            let mut rng =
                SimRng::derive(cfg.seed, &format!("fleet/dev/{device}/{activation}"));
            let class = cfg.profile.class_of(cfg.seed, device);
            let hot = cfg
                .profile
                .hot_membership(cfg.seed, device, ctx.zipf)
                .map(|r| r as u32);
            let bytes = cfg.profile.session_bytes(class, &mut rng);
            let retry_u = rng.next_f64();
            let mut cloud_us = [0.0f64; 5];
            for u in &mut cloud_us {
                *u = rng.next_f64();
            }
            bank.add("fleet.arrivals", class.as_str(), e.at_ns, 1);
            bank.observe("fleet.session_bytes", class.as_str(), e.at_ns, bytes);
            // Preserve the original arrival time across retries so
            // sync latency covers the whole outage wait.
            let t0_ns = map.get(&device).map_or(e.at_ns, |d| d.t0_ns);
            map.insert(
                device,
                ActiveDevice {
                    rng,
                    t0_ns,
                    wait_start_ns: t0_ns,
                    bytes,
                    class,
                    hot,
                    activation: *activation,
                    starved: false,
                },
            );
            Intent::Start {
                device,
                hot,
                bytes,
                site: site_of(device),
                activation: *activation,
                retry_u,
                cloud_us,
                reachable: upload_reachability(ctx.plan, e.at_ns),
            }
        }
        Ev::Attempt { attempt } => {
            let dev = map.get_mut(&device).expect("attempting device is active");
            if *attempt == 0 {
                // The upload just landed (or a deferred cycle starts);
                // lock waiting is measured from here.
                dev.wait_start_ns = e.at_ns;
            }
            // Fixed draw sequence: backoff, retry jitter.
            let backoff_u = dev.rng.next_f64();
            let retry_u = dev.rng.next_f64();
            bank.add(
                "fleet.attempts",
                if dev.hot.is_some() { "hot" } else { "private" },
                e.at_ns,
                1,
            );
            Intent::Attempt {
                device,
                hot: dev.hot,
                attempt: *attempt,
                wait_start_ns: dev.wait_start_ns,
                backoff_u,
                retry_u,
                reachable: upload_reachability(ctx.plan, e.at_ns),
            }
        }
        Ev::Release => {
            let dev = map.get_mut(&device).expect("releasing device is active");
            let next_gap_secs = cfg.profile.next_gap_secs(dev.class, &mut dev.rng);
            Intent::Release {
                device,
                hot: dev.hot,
                bytes: dev.bytes,
                t0_ns: dev.t0_ns,
                activation: dev.activation,
                next_gap_secs,
            }
        }
        Ev::Pull { folder } => {
            bank.add("fleet.pulls", "drain", e.at_ns, 1);
            Intent::Pull {
                device,
                folder: *folder,
                site: site_of(device),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_assignment_is_stable_and_covers_sites() {
        let mut seen = [false; 7];
        for d in 0..1_000u64 {
            let s = site_of(d);
            assert_eq!(s, site_of(d));
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "all sites used");
    }

    #[test]
    fn rate_flux_is_bounded_and_deterministic() {
        for p in 0..5 {
            for slot in 0..50u64 {
                let f = rate_flux(p, slot * 600 * NS_PER_SEC);
                assert!((0.78..=1.0).contains(&f), "flux {f}");
                assert_eq!(f, rate_flux(p, slot * 600 * NS_PER_SEC));
            }
        }
    }

    #[test]
    fn reachability_tracks_outage_windows() {
        let plan = crate::config::default_chaos_plan(1, 600);
        // Before any window: everything reachable.
        assert_eq!(upload_reachability(&plan, 0), [true; 5]);
        // Inside the outage window (h/6..h/3 on provider index 4).
        let mid = 150 * NS_PER_SEC;
        let ok = upload_reachability(&plan, mid);
        assert!(!ok[4], "outage provider unreachable");
        assert!(ok[0] && ok[1] && ok[2], "others still up");
    }

    #[test]
    fn tiny_fleet_runs_to_convergence() {
        let mut cfg = FleetConfig::quick(11);
        cfg.devices = 200;
        cfg.horizon = std::time::Duration::from_secs(120);
        cfg.hot_folders = 5;
        cfg.fault_plan = crate::config::default_chaos_plan(11, 120);
        let m = FleetSim::new(cfg).run();
        assert!(m.counter("sessions.started") > 0);
        assert_eq!(
            m.counter("sessions.started"),
            m.counter("sessions.completed")
        );
        assert!(m.invariants.iter().all(|i| i.pass), "{:?}", m.invariants);
    }

    #[test]
    fn oplog_fleet_converges_without_lock_contention() {
        let mut cfg = FleetConfig::quick(11);
        cfg.devices = 200;
        cfg.horizon = std::time::Duration::from_secs(120);
        cfg.hot_folders = 5;
        cfg.fault_plan = crate::config::default_chaos_plan(11, 120);
        cfg.meta_mode = MetaMode::Oplog;
        let m = FleetSim::new(cfg).run();
        assert!(m.counter("sessions.started") > 0);
        assert_eq!(
            m.counter("sessions.started"),
            m.counter("sessions.completed")
        );
        // Every commit is an op append; nothing ever loses a round.
        assert_eq!(m.counter("oplog.appends"), m.counter("sessions.completed"));
        assert_eq!(m.counter("lock.contended_rounds"), 0);
        assert_eq!(m.counter("lock.exhausted"), 0);
        assert!(m.invariants.iter().all(|i| i.pass), "{:?}", m.invariants);
    }

    #[test]
    fn oplog_fleet_is_deterministic_across_shards_and_threads() {
        let run = |shards: usize, threads: usize| {
            let mut cfg = FleetConfig::quick(23);
            cfg.devices = 150;
            cfg.horizon = std::time::Duration::from_secs(90);
            cfg.hot_folders = 3;
            cfg.shards = shards;
            cfg.threads = threads;
            cfg.fault_plan = crate::config::default_chaos_plan(23, 90);
            cfg.meta_mode = MetaMode::Oplog;
            let m = FleetSim::new(cfg).run();
            (m.to_json(), m.series_json())
        };
        let (json_a, series_a) = run(1, 1);
        let (json_b, series_b) = run(8, 8);
        assert_eq!(json_a, json_b);
        // The windowed series (per-shard banks merged at window
        // boundaries) must also be byte-identical across layouts.
        assert_eq!(series_a, series_b);
        assert!(series_a.contains("\"series\": \"unidrive-obs-series/v1\""));
        assert!(series_a.contains("fleet.arrivals"));
    }

    #[test]
    fn chaos_outage_degrades_target_cloud_health_then_recovers() {
        let mut cfg = FleetConfig::quick(31);
        cfg.devices = 400;
        cfg.horizon = std::time::Duration::from_secs(600);
        cfg.hot_folders = 8;
        // Outage on Provider::ALL[4] over [h/6, h/3) = [100s, 200s).
        cfg.fault_plan = crate::config::default_chaos_plan(31, 600);
        let m = FleetSim::new(cfg).run();

        let target = Provider::ALL[4].name();
        let row = m
            .health_rows
            .iter()
            .find(|r| r.contains(&format!("\"cloud\": \"{target}\"")))
            .expect("scoreboard row for the outage provider");
        // The outage window must drive the cloud out of Healthy…
        assert!(
            row.contains("\"to\": \"degraded\"") || row.contains("\"to\": \"down\""),
            "no degradation recorded: {row}"
        );
        // …and flap damping must walk it back to Healthy by the end.
        assert!(
            row.starts_with(&format!("{{\"cloud\": \"{target}\", \"state\": \"healthy\"")),
            "final state not healthy: {row}"
        );
        // Clouds outside the fault plan's outage stay healthy with no
        // Down transition.
        let calm = m
            .health_rows
            .iter()
            .find(|r| r.contains(&format!("\"cloud\": \"{}\"", Provider::ALL[0].name())))
            .expect("row");
        assert!(!calm.contains("\"to\": \"down\""), "{calm}");
        // Series and scoreboard travel together in the export.
        let doc = m.series_json();
        assert!(doc.contains("\"health\": ["));
        assert!(doc.contains(&format!("\"cloud\": \"{target}\"")));
    }
}
