//! **Bench compare** — regression tracker for the deterministic bench
//! reports. Diffs two runs of the same bench JSON (baseline vs
//! current), applies per-metric tolerances, and emits a markdown
//! summary table; exits non-zero when any tracked metric regressed
//! beyond tolerance.
//!
//! Detects the document type by its schema key:
//!
//! * `bench_kernels` — `mb_per_s` per `(kernel, bytes, threads)` row;
//!   regression = throughput drop beyond 25% (kernel benches run in
//!   wall-clock and jitter with the host), loosened to 35% for the
//!   pool-backed rows (`cut_points_parallel`, `ingest*`, anything at
//!   more than one thread) which also see scheduler placement noise.
//! * `bench_oplog` — `commits_per_min` per `(mode, writers)` cell;
//!   regression = throughput drop beyond 20% (virtual-time, but the
//!   schedule shifts with protocol changes), or any increase in
//!   `failed` commits.
//! * `bench_fleet` — `hist.*` latency percentiles (p50/p95/p99, upper
//!   bound, 25%) plus headline counters: `sessions.completed` must not
//!   drop more than 5%, `lock.starved` must not grow more than 25%
//!   (with a small absolute slack so near-zero baselines don't trip).
//!
//! Rows present in only one run are reported but never count as
//! regressions — a new matrix cell is growth, not a regression.
//!
//! Usage: `bench_compare BASELINE.json CURRENT.json [--md OUT.md]`.
//! The markdown table goes to stdout, or to `--md` when given.

use unidrive_bench::json::{parse_json, Json};

/// One compared metric: identity, both values, and the verdict.
struct Delta {
    key: String,
    metric: &'static str,
    baseline: f64,
    current: f64,
    /// Relative change, signed; positive = current larger.
    change: f64,
    regressed: bool,
}

/// Direction a metric is allowed to move without counting as a
/// regression.
enum Bound {
    /// Higher is better; regression when current drops below
    /// `baseline * (1 - tol)`.
    Lower(f64),
    /// Lower is better; regression when current rises above
    /// `baseline * (1 + tol) + slack`.
    Upper(f64, f64),
}

fn delta(key: String, metric: &'static str, baseline: f64, current: f64, bound: Bound) -> Delta {
    let change = if baseline.abs() > f64::EPSILON {
        (current - baseline) / baseline
    } else if current.abs() > f64::EPSILON {
        f64::INFINITY
    } else {
        0.0
    };
    let regressed = match bound {
        Bound::Lower(tol) => current < baseline * (1.0 - tol),
        Bound::Upper(tol, slack) => current > baseline * (1.0 + tol) + slack,
    };
    Delta {
        key,
        metric,
        baseline,
        current,
        change,
        regressed,
    }
}

/// Pulls `rows` and indexes each row by the given identity fields.
fn index_rows<'a>(doc: &'a Json, id_fields: &[&str]) -> Vec<(String, &'a Json)> {
    doc.get("rows")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|row| {
            let key = id_fields
                .iter()
                .map(|f| match row.get(f) {
                    Some(Json::Str(s)) => s.clone(),
                    Some(Json::Num(v)) => format!("{v}"),
                    _ => "?".to_owned(),
                })
                .collect::<Vec<_>>()
                .join("/");
            (key, row)
        })
        .collect()
}

/// Compares one numeric field across row sets keyed by identity;
/// appends deltas for shared keys and notes one-sided keys. The bound
/// is computed per row key, so one table can mix tolerances.
fn compare_rows(
    base: &[(String, &Json)],
    cur: &[(String, &Json)],
    field: &'static str,
    bound: impl Fn(&str) -> Bound,
    deltas: &mut Vec<Delta>,
    notes: &mut Vec<String>,
) {
    for (key, brow) in base {
        match cur.iter().find(|(k, _)| k == key) {
            Some((_, crow)) => {
                let b = brow.get(field).and_then(Json::as_f64).unwrap_or(0.0);
                let c = crow.get(field).and_then(Json::as_f64).unwrap_or(0.0);
                deltas.push(delta(key.clone(), field, b, c, bound(key)));
            }
            None => notes.push(format!("row `{key}` only in baseline")),
        }
    }
    for (key, _) in cur {
        if !base.iter().any(|(k, _)| k == key) {
            notes.push(format!("row `{key}` only in current"));
        }
    }
}

fn compare_kernels(base: &Json, cur: &Json, deltas: &mut Vec<Delta>, notes: &mut Vec<String>) {
    let b = index_rows(base, &["kernel", "bytes", "threads"]);
    let c = index_rows(cur, &["kernel", "bytes", "threads"]);
    // Single-thread kernels jitter with the host (25%). Pool-backed
    // rows (`cut_points_parallel`, `ingest`, `ingest_gear`, and any
    // row tagged with >1 thread) also contend with whatever else the
    // CI box runs and with scheduler placement, so they get extra
    // headroom (35%) rather than extra strictness.
    compare_rows(
        &b,
        &c,
        "mb_per_s",
        |key| {
            let pooled = key.starts_with("cut_points_parallel/")
                || key.starts_with("ingest")
                || !key.ends_with("/1");
            Bound::Lower(if pooled { 0.35 } else { 0.25 })
        },
        deltas,
        notes,
    );
}

fn compare_oplog(base: &Json, cur: &Json, deltas: &mut Vec<Delta>, notes: &mut Vec<String>) {
    let b = index_rows(base, &["mode", "writers"]);
    let c = index_rows(cur, &["mode", "writers"]);
    compare_rows(&b, &c, "commits_per_min", |_| Bound::Lower(0.20), deltas, notes);
    compare_rows(&b, &c, "failed", |_| Bound::Upper(0.0, 0.0), deltas, notes);
}

fn compare_fleet(base: &Json, cur: &Json, deltas: &mut Vec<Delta>, notes: &mut Vec<String>) {
    // Latency percentiles: higher is worse.
    if let (Some(bh), Some(ch)) = (
        base.get("hist").and_then(Json::as_obj),
        cur.get("hist").and_then(Json::as_obj),
    ) {
        for (name, bhist) in bh {
            let Some((_, chist)) = ch.iter().find(|(n, _)| n == name) else {
                notes.push(format!("hist `{name}` only in baseline"));
                continue;
            };
            for q in ["p50", "p95", "p99"] {
                let b = bhist.get(q).and_then(Json::as_f64).unwrap_or(0.0);
                let c = chist.get(q).and_then(Json::as_f64).unwrap_or(0.0);
                // Histogram buckets are power-of-two-ish; one bucket of
                // absolute slack keeps boundary flips from tripping.
                deltas.push(delta(
                    name.clone(),
                    match q {
                        "p50" => "p50",
                        "p95" => "p95",
                        _ => "p99",
                    },
                    b,
                    c,
                    Bound::Upper(0.25, b * 0.01 + 1.0),
                ));
            }
        }
    }
    let counter = |doc: &Json, name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    deltas.push(delta(
        "counters".to_owned(),
        "sessions.completed",
        counter(base, "sessions.completed"),
        counter(cur, "sessions.completed"),
        Bound::Lower(0.05),
    ));
    deltas.push(delta(
        "counters".to_owned(),
        "lock.starved",
        counter(base, "lock.starved"),
        counter(cur, "lock.starved"),
        Bound::Upper(0.25, 16.0),
    ));
}

fn fmt_val(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e6 || v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn fmt_change(c: f64) -> String {
    if c.is_infinite() {
        "new".to_owned()
    } else {
        format!("{:+.1}%", c * 100.0)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let md_out = args
        .iter()
        .position(|a| a == "--md")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let paths: Vec<&String> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--") && md_out.as_ref() != Some(a))
        .collect();
    let [base_path, cur_path] = paths[..] else {
        eprintln!("usage: bench_compare BASELINE.json CURRENT.json [--md OUT.md]");
        std::process::exit(2);
    };
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_json(&text).unwrap_or_else(|e| {
            eprintln!("bench_compare: {path}: {e}");
            std::process::exit(2);
        })
    };
    let base = load(base_path);
    let cur = load(cur_path);

    let kind = ["bench_kernels", "bench_oplog", "bench_fleet"]
        .into_iter()
        .find(|k| base.get(k).is_some());
    let Some(kind) = kind else {
        eprintln!("bench_compare: {base_path} has no recognized schema key");
        std::process::exit(2);
    };
    if cur.get(kind).is_none() {
        eprintln!("bench_compare: {cur_path} is not a {kind} report");
        std::process::exit(2);
    }

    let mut deltas = Vec::new();
    let mut notes = Vec::new();
    match kind {
        "bench_kernels" => compare_kernels(&base, &cur, &mut deltas, &mut notes),
        "bench_oplog" => compare_oplog(&base, &cur, &mut deltas, &mut notes),
        _ => compare_fleet(&base, &cur, &mut deltas, &mut notes),
    }

    let regressions = deltas.iter().filter(|d| d.regressed).count();
    let mut md = String::new();
    md.push_str(&format!(
        "## {kind} comparison\n\nbaseline `{base_path}` vs current `{cur_path}` — \
         {} metric(s), **{} regression(s)**\n\n",
        deltas.len(),
        regressions
    ));
    md.push_str("| row | metric | baseline | current | change | status |\n");
    md.push_str("|---|---|---:|---:|---:|---|\n");
    for d in &deltas {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            d.key,
            d.metric,
            fmt_val(d.baseline),
            fmt_val(d.current),
            fmt_change(d.change),
            if d.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    if !notes.is_empty() {
        md.push('\n');
        for n in &notes {
            md.push_str(&format!("- {n}\n"));
        }
    }

    match &md_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &md) {
                eprintln!("bench_compare: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "bench_compare: {kind}: {} metric(s), {} regression(s) — summary in {path}",
                deltas.len(),
                regressions
            );
        }
        None => print!("{md}"),
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}
