//! An immutable, cheaply-cloneable byte buffer.
//!
//! API-compatible (for the subset this workspace uses) with the
//! `bytes` crate: `Bytes::new/from/from_static/copy_from_slice`,
//! zero-copy `slice(range)`, `Deref<Target = [u8]>`, and conversions
//! from `Vec<u8>` and iterators. Backed by `Arc<[u8]>` plus a window,
//! so clones and sub-slices are O(1) and never copy the payload.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer; clones and `slice()` are O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer (no allocation beyond a shared empty `Arc`).
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static slice. (Copies once into an `Arc`; the `bytes`
    /// crate avoids that copy, but callers only use this for tiny
    /// literals.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Number of bytes in the (windowed) buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted, matching the
    /// `bytes` crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice range {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the contents out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_vec(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from_vec(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "…(+{} bytes)", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_windowed() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let s2 = s.slice(1..=2);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s2.len(), 2);
        assert!(Arc::ptr_eq(&b.data, &s2.data));
    }

    #[test]
    fn equality_and_conversions() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(Bytes::new().is_empty());
        let collected: Bytes = (0u8..4).collect();
        assert_eq!(&collected[..], &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..9);
    }
}
