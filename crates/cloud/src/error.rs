//! Error taxonomy for cloud storage operations.

use std::fmt;

/// The five RESTful operations of the [`CloudStore`](crate::CloudStore)
/// API, as an enum so errors (and fault schedules) can carry *which*
/// operation was in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CloudOp {
    /// `upload(path, data)`.
    Upload,
    /// `download(path)`.
    Download,
    /// `create_dir(path)`.
    CreateDir,
    /// `list(path)`.
    List,
    /// `delete(path)`.
    Delete,
}

impl CloudOp {
    /// All five operations, in declaration order.
    pub const ALL: [CloudOp; 5] = [
        CloudOp::Upload,
        CloudOp::Download,
        CloudOp::CreateDir,
        CloudOp::List,
        CloudOp::Delete,
    ];

    /// Stable lowercase name (`"upload"`, `"download"`, …), matching the
    /// `op` strings in obs events.
    pub fn as_str(self) -> &'static str {
        match self {
            CloudOp::Upload => "upload",
            CloudOp::Download => "download",
            CloudOp::CreateDir => "create_dir",
            CloudOp::List => "list",
            CloudOp::Delete => "delete",
        }
    }
}

impl fmt::Display for CloudOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned by [`CloudStore`](crate::CloudStore) operations.
///
/// The variants mirror the failure classes the UniDrive measurement study
/// observed for real CCS Web APIs (paper §3.2): transient request
/// failures (by far the most common), admission-level unavailability
/// (regional blocks, outages), quota exhaustion, and plain not-found.
///
/// `Transient` and `Unavailable` optionally carry *operation context*
/// (which of the five ops failed, on what path) so retry loops, fault
/// checkers, and logs can attribute a failure without threading labels
/// out of band. Use the shorthand constructors
/// ([`transient`](CloudError::transient) /
/// [`transient_op`](CloudError::transient_op) /
/// [`unavailable`](CloudError::unavailable) /
/// [`unavailable_op`](CloudError::unavailable_op)) rather than struct
/// literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The object or directory does not exist.
    NotFound {
        /// Path that was requested.
        path: String,
    },
    /// The request failed transiently (network or server hiccup); the
    /// operation may succeed if retried.
    Transient {
        /// Human-readable cause.
        reason: String,
        /// Operation that failed, when known.
        op: Option<CloudOp>,
        /// Path the operation addressed, when known.
        path: Option<String>,
    },
    /// The cloud is administratively unavailable (outage or regional
    /// block); retrying soon is unlikely to help.
    Unavailable {
        /// Cloud that is unavailable.
        cloud: String,
        /// Operation that was refused, when known.
        op: Option<CloudOp>,
        /// Path the operation addressed, when known.
        path: Option<String>,
    },
    /// The account's storage quota would be exceeded.
    QuotaExceeded {
        /// Bytes the upload needed.
        needed: u64,
        /// Bytes still free under the quota.
        available: u64,
    },
    /// The path is syntactically invalid for this store.
    InvalidPath {
        /// Offending path.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An underlying I/O error (filesystem-backed stores).
    Io {
        /// Stringified `std::io::Error`.
        message: String,
    },
}

impl CloudError {
    /// Whether retrying the same operation may succeed.
    ///
    /// Decided explicitly per variant:
    ///
    /// * `Transient` — yes, by definition.
    /// * `Io` — yes. Filesystem-backed stores surface interrupted
    ///   syscalls, sharing violations, and momentary contention as `Io`;
    ///   those are the local-disk analogue of a network hiccup, and the
    ///   retry budget is bounded anyway. (Before this was decided
    ///   explicitly, `Io` silently fell through to "not retryable".)
    /// * `Unavailable` / `QuotaExceeded` — no: they need failover, not
    ///   retry (UniDrive routes the block to another cloud instead).
    /// * `NotFound` / `InvalidPath` — no: deterministic outcomes.
    pub fn is_retryable(&self) -> bool {
        match self {
            CloudError::Transient { .. } | CloudError::Io { .. } => true,
            CloudError::NotFound { .. }
            | CloudError::Unavailable { .. }
            | CloudError::QuotaExceeded { .. }
            | CloudError::InvalidPath { .. } => false,
        }
    }

    /// Shorthand constructor for transient failures without operation
    /// context.
    pub fn transient(reason: impl Into<String>) -> Self {
        CloudError::Transient {
            reason: reason.into(),
            op: None,
            path: None,
        }
    }

    /// Transient failure with operation context.
    pub fn transient_op(reason: impl Into<String>, op: CloudOp, path: impl Into<String>) -> Self {
        CloudError::Transient {
            reason: reason.into(),
            op: Some(op),
            path: Some(path.into()),
        }
    }

    /// Shorthand constructor for unavailability without operation
    /// context.
    pub fn unavailable(cloud: impl Into<String>) -> Self {
        CloudError::Unavailable {
            cloud: cloud.into(),
            op: None,
            path: None,
        }
    }

    /// Unavailability with operation context.
    pub fn unavailable_op(cloud: impl Into<String>, op: CloudOp, path: impl Into<String>) -> Self {
        CloudError::Unavailable {
            cloud: cloud.into(),
            op: Some(op),
            path: Some(path.into()),
        }
    }

    /// Shorthand constructor for not-found.
    pub fn not_found(path: impl Into<String>) -> Self {
        CloudError::NotFound { path: path.into() }
    }

    /// The failed operation, when the error carries that context.
    pub fn op(&self) -> Option<CloudOp> {
        match self {
            CloudError::Transient { op, .. } | CloudError::Unavailable { op, .. } => *op,
            _ => None,
        }
    }

    /// Attaches operation context to a `Transient`/`Unavailable` error
    /// that lacks it; context already present wins (the deepest layer
    /// knows the *originating* op), and other variants pass through
    /// untouched. Every decorator applies this to errors crossing it,
    /// so retry accounting and health tracking see the originating
    /// operation through any stack depth.
    pub fn with_op_context(self, op: CloudOp, path: &str) -> CloudError {
        match self {
            CloudError::Transient {
                reason,
                op: prev_op,
                path: prev_path,
            } => CloudError::Transient {
                reason,
                op: prev_op.or(Some(op)),
                path: prev_path.or_else(|| Some(path.to_owned())),
            },
            CloudError::Unavailable {
                cloud,
                op: prev_op,
                path: prev_path,
            } => CloudError::Unavailable {
                cloud,
                op: prev_op.or(Some(op)),
                path: prev_path.or_else(|| Some(path.to_owned())),
            },
            other => other,
        }
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Renders the optional context as " during upload of p" so
        // messages stay terse when no context was recorded.
        fn ctx(f: &mut fmt::Formatter<'_>, op: &Option<CloudOp>, path: &Option<String>) -> fmt::Result {
            if let Some(op) = op {
                write!(f, " during {op}")?;
            }
            if let Some(path) = path {
                write!(f, " of {path:?}")?;
            }
            Ok(())
        }
        match self {
            CloudError::NotFound { path } => write!(f, "object not found: {path}"),
            CloudError::Transient { reason, op, path } => {
                write!(f, "transient failure: {reason}")?;
                ctx(f, op, path)
            }
            CloudError::Unavailable { cloud, op, path } => {
                write!(f, "cloud unavailable: {cloud}")?;
                ctx(f, op, path)
            }
            CloudError::QuotaExceeded { needed, available } => write!(
                f,
                "quota exceeded: needed {needed} bytes, {available} available"
            ),
            CloudError::InvalidPath { path, reason } => {
                write!(f, "invalid path {path:?}: {reason}")
            }
            CloudError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<std::io::Error> for CloudError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            CloudError::NotFound {
                path: String::new(),
            }
        } else {
            CloudError::Io {
                message: e.to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_and_io_are_retryable_the_rest_are_not() {
        assert!(CloudError::transient("x").is_retryable());
        assert!(CloudError::Io {
            message: "interrupted".into()
        }
        .is_retryable());
        assert!(!CloudError::not_found("p").is_retryable());
        assert!(!CloudError::unavailable("c").is_retryable());
        assert!(!CloudError::QuotaExceeded {
            needed: 1,
            available: 0
        }
        .is_retryable());
        assert!(!CloudError::InvalidPath {
            path: "/x".into(),
            reason: "abs".into()
        }
        .is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = CloudError::QuotaExceeded {
            needed: 10,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('3'));
    }

    #[test]
    fn display_includes_operation_context() {
        let e = CloudError::transient_op("dropped", CloudOp::Upload, "docs/a.bin");
        let s = e.to_string();
        assert!(s.contains("dropped") && s.contains("upload") && s.contains("docs/a.bin"), "{s}");
        let e = CloudError::unavailable_op("dropbox", CloudOp::List, "locks");
        let s = e.to_string();
        assert!(s.contains("dropbox") && s.contains("list") && s.contains("locks"), "{s}");
        // Without context, no dangling separators.
        assert_eq!(CloudError::transient("x").to_string(), "transient failure: x");
    }

    #[test]
    fn op_accessor_exposes_context() {
        assert_eq!(
            CloudError::transient_op("x", CloudOp::Delete, "p").op(),
            Some(CloudOp::Delete)
        );
        assert_eq!(CloudError::transient("x").op(), None);
        assert_eq!(CloudError::not_found("p").op(), None);
    }

    #[test]
    fn cloud_op_names_are_stable() {
        let names: Vec<&str> = CloudOp::ALL.iter().map(|o| o.as_str()).collect();
        assert_eq!(
            names,
            vec!["upload", "download", "create_dir", "list", "delete"]
        );
    }

    #[test]
    fn io_not_found_maps_to_not_found() {
        let io = std::io::Error::from(std::io::ErrorKind::NotFound);
        assert!(matches!(CloudError::from(io), CloudError::NotFound { .. }));
    }
}
