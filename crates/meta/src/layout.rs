//! Cloud-side object layout shared by every UniDrive client.
//!
//! All coordination is done through files (paper §4): the encrypted
//! metadata base and delta, the tiny version file, empty lock files in a
//! dedicated lock directory (footnote 3: a separate directory keeps
//! `list` traffic small), and the erasure-coded blocks named by segment
//! hash and block index.

use crate::SegmentId;

/// Root directory UniDrive uses on every cloud.
pub const ROOT_DIR: &str = "unidrive";

/// The encrypted metadata base file.
pub const BASE_PATH: &str = "unidrive/meta.base";

/// The encrypted metadata delta file.
pub const DELTA_PATH: &str = "unidrive/meta.delta";

/// The small version file checked on every poll.
pub const VERSION_PATH: &str = "unidrive/meta.version";

/// The dedicated lock directory.
pub const LOCK_DIR: &str = "unidrive/locks";

/// Directory holding erasure-coded blocks.
pub const BLOCKS_DIR: &str = "unidrive/blocks";

/// Directory holding the oplog metadata plane: per-device op files
/// plus the compacted base (separate from the lock plane's files so
/// the two modes never alias each other's objects).
pub const OPLOG_DIR: &str = "unidrive/oplog";

/// The oplog plane's compacted base image (encrypted, with the fold
/// watermark), written only under the quorum lock.
pub const OPLOG_BASE_PATH: &str = "unidrive/oplog/base";

/// Prefix of per-device op files inside [`OPLOG_DIR`].
pub const OP_FILE_PREFIX: &str = "ops_";

/// Cloud path of one erasure-coded block: the segment id concatenated
/// with the block's sequence number (paper §5.1).
///
/// # Examples
///
/// ```
/// use unidrive_crypto::Sha1;
/// use unidrive_meta::{block_path, SegmentId};
///
/// let id = SegmentId(Sha1::digest(b"x"));
/// let path = block_path(&id, 4);
/// assert!(path.starts_with("unidrive/blocks/"));
/// assert!(path.ends_with(".4"));
/// ```
pub fn block_path(segment: &SegmentId, index: u16) -> String {
    format!("{BLOCKS_DIR}/{}.{index}", segment.to_hex())
}

/// Name of a lock file for `device` stamped with the device-local
/// time `t` (paper §5.2: `lock_<d>_<t>`).
pub fn lock_file_name(device: &str, t_ns: u64) -> String {
    format!("lock_{device}_{t_ns}")
}

/// Full cloud path of a lock file.
pub fn lock_file_path(device: &str, t_ns: u64) -> String {
    format!("{LOCK_DIR}/{}", lock_file_name(device, t_ns))
}

/// Name of `device`'s append-only op file (one per device; the device
/// is its sole writer, so appends never race).
pub fn op_file_name(device: &str) -> String {
    format!("{OP_FILE_PREFIX}{device}")
}

/// Full cloud path of `device`'s op file.
pub fn op_file_path(device: &str) -> String {
    format!("{OPLOG_DIR}/{}", op_file_name(device))
}

/// Parses an op file name back into the owning device.
///
/// Returns `None` for files that are not op files.
pub fn parse_op_file_name(name: &str) -> Option<&str> {
    let device = name.strip_prefix(OP_FILE_PREFIX)?;
    if device.is_empty() {
        return None;
    }
    Some(device)
}

/// Parses a lock file name back into `(device, t)`.
///
/// Returns `None` for files that are not lock files.
pub fn parse_lock_name(name: &str) -> Option<(&str, u64)> {
    let rest = name.strip_prefix("lock_")?;
    let sep = rest.rfind('_')?;
    let device = &rest[..sep];
    if device.is_empty() {
        return None;
    }
    let t = rest[sep + 1..].parse().ok()?;
    Some((device, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_crypto::Sha1;

    #[test]
    fn block_paths_are_unique_per_index() {
        let id = SegmentId(Sha1::digest(b"seg"));
        assert_ne!(block_path(&id, 0), block_path(&id, 1));
        assert!(block_path(&id, 7).contains(&id.to_hex()));
    }

    #[test]
    fn lock_name_round_trip() {
        let name = lock_file_name("laptop-2", 123456789);
        assert_eq!(parse_lock_name(&name), Some(("laptop-2", 123456789)));
    }

    #[test]
    fn lock_name_with_underscored_device_round_trips() {
        // Device names may contain underscores; the timestamp is after
        // the LAST underscore.
        let name = lock_file_name("my_home_pc", 42);
        assert_eq!(parse_lock_name(&name), Some(("my_home_pc", 42)));
    }

    #[test]
    fn non_lock_names_rejected() {
        assert_eq!(parse_lock_name("meta.base"), None);
        assert_eq!(parse_lock_name("lock_"), None);
        assert_eq!(parse_lock_name("lock_dev_notanumber"), None);
        assert_eq!(parse_lock_name("lock__77"), None);
    }

    #[test]
    fn layout_paths_are_coherent() {
        assert!(BASE_PATH.starts_with(ROOT_DIR));
        assert!(DELTA_PATH.starts_with(ROOT_DIR));
        assert!(VERSION_PATH.starts_with(ROOT_DIR));
        assert!(LOCK_DIR.starts_with(ROOT_DIR));
        assert!(BLOCKS_DIR.starts_with(ROOT_DIR));
        assert!(OPLOG_DIR.starts_with(ROOT_DIR));
        assert!(OPLOG_BASE_PATH.starts_with(OPLOG_DIR));
    }

    #[test]
    fn op_file_name_round_trip() {
        let name = op_file_name("my_home_pc");
        assert_eq!(parse_op_file_name(&name), Some("my_home_pc"));
        assert_eq!(op_file_path("d"), "unidrive/oplog/ops_d");
    }

    #[test]
    fn non_op_file_names_rejected() {
        assert_eq!(parse_op_file_name("base"), None);
        assert_eq!(parse_op_file_name("ops_"), None);
        assert_eq!(parse_op_file_name("lock_dev_1"), None);
    }
}
