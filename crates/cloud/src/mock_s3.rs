//! An in-process S3-compatible object-store server for tests and CI.
//!
//! `MockS3` binds an ephemeral loopback port, accepts keep-alive
//! HTTP/1.1 connections on a background thread, and serves a single
//! bucket backed by a [`MemCloud`] — so directory semantics, NotFound
//! behavior, and recursive delete match the in-memory reference
//! backend exactly (the way MinIO's filesystem backend mirrors a real
//! directory tree). The wire surface is the subset of the S3 REST API
//! that [`S3Cloud`](crate::S3Cloud) speaks:
//!
//! | request                                   | meaning            |
//! |-------------------------------------------|--------------------|
//! | `PUT /{bucket}/{key}`                     | upload object      |
//! | `PUT /{bucket}/{key}/`                    | create directory   |
//! | `GET /{bucket}/{key}`                     | download object    |
//! | `DELETE /{bucket}/{key}`                  | delete object/dir  |
//! | `GET /{bucket}?list-type=2&prefix=&delimiter=%2F` | list one level |
//!
//! The wire dialect follows real S3, so passing the conformance suite
//! over this server certifies behavior a real endpoint would also
//! show: listings carry the `xmlns` attribute on `ListBucketResult`,
//! pages are capped at [`set_page_size`](MockS3::set_page_size) keys
//! (default 1000, like S3) and chained with
//! `IsTruncated`/`NextContinuationToken`, `DELETE` of a missing key
//! answers 204, and listing a prefix that was never created answers an
//! empty listing — the idempotent not-found dialect `S3Cloud` declares
//! via `CloudCaps::strict_not_found = false`.
//!
//! Fault hooks — [`fail_next`](MockS3::fail_next) and
//! [`throttle_next`](MockS3::throttle_next) — make the next N requests
//! fail with 500/503 (throttling adds `Retry-After: 0`), letting
//! integration tests drive the retry path over real sockets with a
//! seeded, deterministic fault budget. Responses whose body is at
//! least the configured chunk threshold go out chunked, exercising the
//! client's de-chunking path.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use unidrive_util::bytes::Bytes;

use crate::http::{
    percent_decode, read_request, write_response, HttpRequest, HttpResponse,
};
use crate::{CloudError, CloudStore, MemCloud};

/// Idle poll interval while waiting for the next request on a
/// keep-alive connection; bounds shutdown latency.
const IDLE_POLL: Duration = Duration::from_millis(25);
/// Read timeout once a request has started arriving.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Shared fault-injection and accounting state.
struct Hooks {
    fail_500: AtomicU32,
    fail_503: AtomicU32,
    throttle: AtomicU32,
    requests: AtomicU64,
    faults_injected: AtomicU64,
    /// Response bodies at or above this many bytes are sent chunked.
    chunk_threshold: AtomicUsize,
    /// Maximum keys per listing page (real S3: 1000).
    page_size: AtomicUsize,
}

/// An in-process S3-compatible server on an ephemeral loopback port.
pub struct MockS3 {
    addr: SocketAddr,
    store: Arc<MemCloud>,
    hooks: Arc<Hooks>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for MockS3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MockS3")
            .field("addr", &self.addr)
            .field("requests", &self.hooks.requests.load(Ordering::Relaxed))
            .finish()
    }
}

impl MockS3 {
    /// Boots a server on `127.0.0.1:0` (ephemeral port) and returns
    /// once it is accepting connections.
    pub fn start() -> io::Result<MockS3> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let store = Arc::new(MemCloud::new("mock-s3"));
        let hooks = Arc::new(Hooks {
            fail_500: AtomicU32::new(0),
            fail_503: AtomicU32::new(0),
            throttle: AtomicU32::new(0),
            requests: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            chunk_threshold: AtomicUsize::new(64 * 1024),
            page_size: AtomicUsize::new(1000),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let store = Arc::clone(&store);
            let hooks = Arc::clone(&hooks);
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("mock-s3-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let store = Arc::clone(&store);
                        let hooks = Arc::clone(&hooks);
                        let stop2 = Arc::clone(&stop);
                        let handle = std::thread::Builder::new()
                            .name("mock-s3-conn".into())
                            .spawn(move || serve_connection(stream, &store, &hooks, &stop2))
                            .expect("spawn mock-s3 connection thread");
                        conn_threads.lock().unwrap().push(handle);
                    }
                })?
        };
        Ok(MockS3 {
            addr,
            store,
            hooks,
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The server's `host:port` endpoint string.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The backing in-memory store (for white-box assertions).
    pub fn store(&self) -> &Arc<MemCloud> {
        &self.store
    }

    /// Makes the next `count` requests fail with `status` (500 or 503)
    /// before touching the store.
    pub fn fail_next(&self, status: u16, count: u32) {
        match status {
            500 => self.hooks.fail_500.fetch_add(count, Ordering::SeqCst),
            503 => self.hooks.fail_503.fetch_add(count, Ordering::SeqCst),
            other => panic!("MockS3::fail_next supports 500 and 503, got {other}"),
        };
    }

    /// Makes the next `count` requests fail with a throttling 503
    /// carrying `Retry-After: 0`.
    pub fn throttle_next(&self, count: u32) {
        self.hooks.throttle.fetch_add(count, Ordering::SeqCst);
    }

    /// Response bodies at or above `bytes` are sent with chunked
    /// transfer-encoding (default 64 KiB; `usize::MAX` disables).
    pub fn set_chunk_threshold(&self, bytes: usize) {
        self.hooks.chunk_threshold.store(bytes, Ordering::SeqCst);
    }

    /// Caps listing pages at `keys` entries (default 1000, mirroring
    /// real S3): larger listings are chained with `IsTruncated` and
    /// `NextContinuationToken`. Tests set a small value so the
    /// client's pagination path is exercised on small directories.
    pub fn set_page_size(&self, keys: usize) {
        assert!(keys > 0, "page size must be positive");
        self.hooks.page_size.store(keys, Ordering::SeqCst);
    }

    /// Total requests served (including injected failures).
    pub fn requests(&self) -> u64 {
        self.hooks.requests.load(Ordering::SeqCst)
    }

    /// Total injected 500/503/throttle responses actually served.
    pub fn faults_injected(&self) -> u64 {
        self.hooks.faults_injected.load(Ordering::SeqCst)
    }
}

impl Drop for MockS3 {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Kick the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conn_threads.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Serves one keep-alive connection until EOF, error, or shutdown.
fn serve_connection(stream: TcpStream, store: &MemCloud, hooks: &Hooks, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let mut reader = std::io::BufReader::new(stream);
    loop {
        // Poll for the first byte of the next request so shutdown is
        // prompt even while a client holds the connection idle.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        match reader.get_ref().peek(&mut [0u8; 1]) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                continue
            }
            Err(_) => return,
        }
        let _ = reader.get_ref().set_read_timeout(Some(REQUEST_TIMEOUT));
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(_) => {
                let resp = error_response(400, "Bad Request", "MalformedRequest");
                let _ = send(reader.get_mut(), &resp, usize::MAX);
                return;
            }
        };
        hooks.requests.fetch_add(1, Ordering::SeqCst);
        let resp = match injected_fault(hooks) {
            Some(resp) => resp,
            None => handle(&req, store, hooks),
        };
        let threshold = hooks.chunk_threshold.load(Ordering::SeqCst);
        if send(reader.get_mut(), &resp, threshold).is_err() {
            return;
        }
    }
}

fn send(stream: &mut TcpStream, resp: &HttpResponse, chunk_threshold: usize) -> io::Result<()> {
    let chunked = resp.body.len() >= chunk_threshold;
    // Buffer the frame writes: chunked encoding emits three small
    // writes per 16 KiB frame, and with TCP_NODELAY each unbuffered
    // write becomes its own segment — an order of magnitude off on
    // large downloads.
    let mut w = io::BufWriter::with_capacity(64 * 1024, stream);
    write_response(&mut w, resp, chunked)?;
    w.flush()
}

/// Takes one pending injected fault, if any (500 first, then 503,
/// then throttle — tests arm one kind at a time).
fn injected_fault(hooks: &Hooks) -> Option<HttpResponse> {
    if take_one(&hooks.fail_500) {
        hooks.faults_injected.fetch_add(1, Ordering::SeqCst);
        return Some(error_response(500, "Internal Server Error", "InternalError"));
    }
    if take_one(&hooks.fail_503) {
        hooks.faults_injected.fetch_add(1, Ordering::SeqCst);
        return Some(error_response(503, "Service Unavailable", "ServiceUnavailable"));
    }
    if take_one(&hooks.throttle) {
        hooks.faults_injected.fetch_add(1, Ordering::SeqCst);
        return Some(
            error_response(503, "Slow Down", "SlowDown").header("Retry-After", "0"),
        );
    }
    None
}

/// Atomically decrements `counter` if positive.
fn take_one(counter: &AtomicU32) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

fn error_response(status: u16, reason: &str, code: &str) -> HttpResponse {
    let body = format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<Error><Code>{code}</Code></Error>");
    HttpResponse::new(status, reason)
        .header("Content-Type", "application/xml")
        .body(body.into_bytes())
}

fn store_error(e: &CloudError) -> HttpResponse {
    match e {
        CloudError::NotFound { .. } => error_response(404, "Not Found", "NoSuchKey"),
        CloudError::InvalidPath { .. } => error_response(400, "Bad Request", "InvalidRequest"),
        CloudError::QuotaExceeded { .. } => {
            error_response(507, "Insufficient Storage", "QuotaExceeded")
        }
        _ => error_response(500, "Internal Server Error", "InternalError"),
    }
}

/// Routes one request against the backing store.
fn handle(req: &HttpRequest, store: &MemCloud, hooks: &Hooks) -> HttpResponse {
    let (raw_path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.target.as_str(), None),
    };
    let path = percent_decode(raw_path);
    let Some(stripped) = path.strip_prefix('/') else {
        return error_response(400, "Bad Request", "InvalidURI");
    };
    // Single-bucket server: the first segment names the bucket and is
    // otherwise ignored; the rest is the object key.
    let (bucket, key) = match stripped.split_once('/') {
        Some((b, k)) => (b, k),
        None => (stripped, ""),
    };
    if bucket.is_empty() {
        return error_response(400, "Bad Request", "InvalidBucketName");
    }
    match (req.method.as_str(), key, query) {
        // GET on the bucket itself is a listing (the only bucket-level
        // operation this dialect speaks).
        ("GET", "", q) => list_objects(store, q.unwrap_or(""), hooks.page_size.load(Ordering::SeqCst)),
        ("PUT", _, _) if key.ends_with('/') => {
            match store.create_dir(key.trim_end_matches('/')) {
                Ok(()) => HttpResponse::new(200, "OK"),
                Err(e) => store_error(&e),
            }
        }
        ("PUT", _, _) => match store.upload(key, Bytes::copy_from_slice(&req.body)) {
            Ok(()) => HttpResponse::new(200, "OK"),
            Err(e) => store_error(&e),
        },
        ("GET", _, _) => match store.download(key) {
            Ok(data) => HttpResponse::new(200, "OK")
                .header("Content-Type", "application/octet-stream")
                .body(data.to_vec()),
            Err(e) => store_error(&e),
        },
        // Real S3 dialect: deleting a missing key succeeds with 204.
        ("DELETE", _, _) => match store.delete(key) {
            Ok(()) | Err(CloudError::NotFound { .. }) => HttpResponse::new(204, "No Content"),
            Err(e) => store_error(&e),
        },
        _ => error_response(405, "Method Not Allowed", "MethodNotAllowed"),
    }
}

fn is_list(query: &str) -> bool {
    query.split('&').any(|kv| kv == "list-type=2")
}

/// Serves `GET /{bucket}?list-type=2&prefix=...&delimiter=%2F` from
/// the backing store's one-level listing, paginated at `page_size`
/// keys per response with an S3-style continuation chain.
fn list_objects(store: &MemCloud, query: &str, page_size: usize) -> HttpResponse {
    if !is_list(query) {
        return error_response(400, "Bad Request", "InvalidRequest");
    }
    let mut prefix = String::new();
    let mut token: Option<String> = None;
    for kv in query.split('&') {
        if let Some((k, v)) = kv.split_once('=') {
            match k {
                "prefix" => prefix = percent_decode(v),
                "continuation-token" => token = Some(percent_decode(v)),
                _ => {}
            }
        }
    }
    let dir = prefix.trim_end_matches('/');
    // Real S3 dialect: a prefix nothing was ever stored under is an
    // empty listing, not an error.
    let mut entries = match store.list(dir) {
        Ok(entries) => entries,
        Err(CloudError::NotFound { .. }) => Vec::new(),
        Err(e) => return store_error(&e),
    };
    // Stable lexicographic order (S3's contract) so index-based
    // continuation tokens stay consistent across pages.
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    // The token is opaque to clients; here it encodes the next start
    // index into the sorted listing.
    let start = match token {
        None => 0,
        Some(t) => match t.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return error_response(400, "Bad Request", "InvalidArgument"),
        },
    };
    let end = entries.len().min(start.saturating_add(page_size));
    let page = entries.get(start..end).unwrap_or(&[]);
    let key_prefix = if dir.is_empty() {
        String::new()
    } else {
        format!("{dir}/")
    };
    let mut xml = String::from(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <ListBucketResult xmlns=\"http://s3.amazonaws.com/doc/2006-03-01/\">",
    );
    xml.push_str(&format!("<Prefix>{}</Prefix>", xml_escape(&prefix)));
    xml.push_str(&format!("<KeyCount>{}</KeyCount>", page.len()));
    for entry in page {
        if entry.is_dir {
            xml.push_str(&format!(
                "<CommonPrefixes><Prefix>{}{}/</Prefix></CommonPrefixes>",
                xml_escape(&key_prefix),
                xml_escape(&entry.name)
            ));
        } else {
            xml.push_str(&format!(
                "<Contents><Key>{}{}</Key><Size>{}</Size></Contents>",
                xml_escape(&key_prefix),
                xml_escape(&entry.name),
                entry.size
            ));
        }
    }
    if end < entries.len() {
        xml.push_str(&format!(
            "<IsTruncated>true</IsTruncated><NextContinuationToken>{end}</NextContinuationToken>"
        ));
    } else {
        xml.push_str("<IsTruncated>false</IsTruncated>");
    }
    xml.push_str("</ListBucketResult>");
    HttpResponse::new(200, "OK")
        .header("Content-Type", "application/xml")
        .body(xml.into_bytes())
}

/// Escapes the five XML special characters.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`xml_escape`].
pub fn xml_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find('&') {
        out.push_str(&rest[..at]);
        rest = &rest[at..];
        let known = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        match known.iter().find(|(e, _)| rest.starts_with(e)) {
            Some((entity, ch)) => {
                out.push(*ch);
                rest = &rest[entity.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}
