//! Integration tests of the observability subsystem wired through a
//! full two-device sync: five simulated clouds behind deterministic
//! failure injection, one registry shared by both clients, and the
//! snapshot reconciled against ground truth (injected fault counts,
//! lock round-trips, block completions).

use std::sync::Arc;

use unidrive::cloud::{CloudBuilder, CloudSet, CloudStore, FaultPlan, SimCloud, SimCloudConfig};
use unidrive::core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive::erasure::RedundancyConfig;
use unidrive::core::SyncReport;
use unidrive::obs::{Obs, Registry, Snapshot};
use unidrive::sim::{Runtime, SimRng, SimRuntime};

const FAILURE_PROB: f64 = 0.08;

struct RunResult {
    /// Canonicalized JSON export of the whole run.
    json: String,
    /// Ground truth: failures the wrappers actually injected.
    injected: u64,
    snapshot: Snapshot,
}

/// One full scenario: device A commits a multi-segment file through
/// faulty clouds, device B pulls it, everything records into a single
/// registry clocked by the sim.
fn run_scenario(seed: u64) -> RunResult {
    let sim = SimRuntime::new(seed);
    let obs = Obs::with_registry(Registry::with_trace_capacity(1 << 16));
    let mut faulty = Vec::new();
    let members: Vec<Arc<dyn CloudStore>> = (0..5u64)
        .map(|i| {
            let inner = Arc::new(SimCloud::new(
                &sim,
                format!("cloud{i}"),
                SimCloudConfig::steady(2e6, 8e6),
            ));
            inner.install_obs(obs.clone());
            let rt = sim.clone().as_runtime();
            let built = CloudBuilder::new(&rt, inner as Arc<dyn CloudStore>)
                .chaos(&FaultPlan::new(seed * 31 + i), "")
                .obs(&obs)
                .build();
            let f = built.chaos.expect("chaos stage configured");
            f.set_flat_probability(FAILURE_PROB);
            faulty.push(f);
            built.store
        })
        .collect();
    let clouds = CloudSet::new(members);

    let client = |device: &str, folder: &Arc<MemFolder>, cseed: u64| {
        let mut config = ClientConfig::paper_default(device);
        config.data = DataPlaneConfig {
            obs: obs.clone(),
            ..DataPlaneConfig::with_params(
                RedundancyConfig::new(5, 3, 3, 2).unwrap(),
                64 * 1024, // small θ: many blocks, many chances to fail
            )
        };
        UniDriveClient::new(
            sim.clone().as_runtime(),
            clouds.clone(),
            Arc::clone(folder) as Arc<dyn SyncFolder>,
            config,
            SimRng::seed_from_u64(cseed),
        )
    };

    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client("device-a", &folder_a, 1);
    let mut b = client("device-b", &folder_b, 2);

    // A burst of injected failures can cost a whole sync round (e.g.
    // the lock quorum appears unreachable); retry like the real client
    // daemon would. Determinism is unaffected — the retries themselves
    // are part of the seeded schedule.
    let sync_until = |c: &mut UniDriveClient, what: &str| -> SyncReport {
        for _ in 0..10 {
            match c.sync_once() {
                Ok(rep) => return rep,
                Err(_) => sim.sleep(std::time::Duration::from_secs(5)),
            }
        }
        panic!("{what} failed 10 sync rounds in a row");
    };

    let data: Vec<u8> = (0..600_000).map(|i| (i % 251) as u8).collect();
    folder_a.write("big.bin", &data, 1).unwrap();
    let up = sync_until(&mut a, "A commit");
    assert_eq!(up.uploaded, vec!["big.bin"]);
    let down = sync_until(&mut b, "B fetch");
    assert_eq!(down.downloaded, vec!["big.bin"]);
    assert_eq!(folder_b.read("big.bin").unwrap().to_vec(), data);

    let mut snapshot = obs.snapshot().unwrap();
    snapshot.canonicalize();
    RunResult {
        json: snapshot.to_json(),
        injected: faulty.iter().map(|f| f.injected_faults()).sum(),
        snapshot,
    }
}

#[test]
fn two_device_sync_records_lock_block_and_retry_metrics() {
    let r = run_scenario(0xb5);
    let s = &r.snapshot;

    // The commit path took (and released) the quorum lock, and the
    // wait-latency histogram saw every acquisition.
    assert!(s.counter("lock.acquired") > 0, "no lock acquisitions");
    assert_eq!(s.counter("lock.acquired"), s.counter("lock.released"));
    assert_eq!(
        s.histogram("lock.acquire_wait_ns").expect("lock hist").count,
        s.counter("lock.acquired"),
    );

    // Both directions of the data plane moved blocks.
    assert!(s.counter("upload.blocks_completed") > 0, "no uploads");
    assert!(s.counter("download.blocks_completed") > 0, "no downloads");
    assert!(s.counter("client.sync_rounds.committed") > 0);
    assert!(s.counter("client.sync_rounds.fetched") > 0);
    assert_eq!(
        s.counter("client.sync_rounds"),
        s.counter_sum("client.sync_rounds."),
        "every sync round has exactly one outcome label"
    );

    // Retry accounting reconciles with the faults actually injected:
    // the registry saw exactly the wrappers' count, and every observed
    // data-plane retry was caused by one of them.
    assert!(r.injected > 0, "scenario injected no failures; raise prob");
    let observed_injected: u64 = s
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("chaos.") && name.ends_with(".injected"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(observed_injected, r.injected);
    assert!(s.counter("retry.attempts") > 0, "faults but no retries");
    assert!(s.counter("retry.attempts") <= r.injected);
    assert!(s.counter("retry.recovered") > 0, "no retried op recovered");

    // The virtual clock stamped the trace (nothing at wall time zero
    // only), and nothing was silently dropped at this capacity.
    assert_eq!(s.dropped_events, 0);
    assert!(s.events.iter().any(|e| e.t_ns > 0), "unclocked trace");
}

#[test]
fn same_seed_two_device_sync_exports_identical_snapshots() {
    let first = run_scenario(0xb5);
    let second = run_scenario(0xb5);
    assert_eq!(first.injected, second.injected);
    assert_eq!(first.json, second.json, "same-seed exports diverged");
}

#[test]
fn spans_form_a_causal_tree_rooted_at_sync_rounds() {
    let r = run_scenario(0xb5);
    let s = &r.snapshot;
    assert_eq!(s.dropped_spans, 0, "span ring evicted; raise capacity");

    let by_id: std::collections::HashMap<u64, &unidrive::obs::SpanRecord> =
        s.spans.iter().map(|sp| (sp.id, sp)).collect();
    let parent_name = |sp: &unidrive::obs::SpanRecord| -> &'static str {
        by_id
            .get(&sp.parent)
            .unwrap_or_else(|| panic!("{} span {} has unrecorded parent {}", sp.name, sp.id, sp.parent))
            .name
    };

    // Every block attempt parents to a transfer batch, every batch to
    // the sync round that issued it, and every wire attempt to its
    // block — the full causal chain of Algorithm 1's data path.
    let mut blocks = 0;
    for sp in &s.spans {
        match sp.name {
            "engine.block" => {
                blocks += 1;
                assert_eq!(parent_name(sp), "engine.batch");
                let batch = by_id[&sp.parent];
                assert_eq!(parent_name(batch), "sync.round");
            }
            "engine.batch" => assert_eq!(parent_name(sp), "sync.round"),
            "engine.worker" => assert_eq!(parent_name(sp), "engine.batch"),
            "wire.attempt" => assert_eq!(parent_name(sp), "engine.block"),
            "lock.acquire" | "meta.read" | "meta.merge" | "meta.commit" => {
                assert_eq!(parent_name(sp), "sync.round");
            }
            "lock.refresh" | "lock.release" | "lock.break" => {
                assert_eq!(parent_name(sp), "lock.acquire");
            }
            "sync.round" => assert_eq!(sp.parent, 0, "sync.round must be a root"),
            other => panic!("span name {other} missing from the taxonomy check"),
        }
        assert!(sp.end_ns >= sp.start_ns, "{} runs backwards", sp.name);
    }
    assert!(blocks > 0, "scenario moved no blocks");
    assert!(s.span_count("sync.round") >= 2, "both devices synced");
    assert!(s.span_count("meta.merge") > 0, "commit path never merged");
}

#[test]
fn same_seed_runs_export_identical_chrome_traces() {
    let first = run_scenario(0xb5);
    let second = run_scenario(0xb5);
    let t1 = first.snapshot.to_chrome_trace();
    let t2 = second.snapshot.to_chrome_trace();
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "same-seed Chrome traces diverged");
}
