//! The *multi-cloud benchmark* baseline (paper §7.1): a traditional
//! multi-cloud design in the style of RACS and DepSky — erasure-coded
//! blocks uniformly distributed across clouds (so it has UniDrive's
//! reliability and security), but **no over-provisioning and no dynamic
//! scheduling**: every cloud receives exactly its fair share, uploads
//! wait for the slowest assignment, and downloads fetch a statically
//! chosen set of `k` blocks.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_cloud::{retrying, CloudError, CloudSet, RetryPolicy};
use unidrive_erasure::{Codec, RedundancyConfig};
use unidrive_meta::{block_path, BlockRef, SegmentId};
use unidrive_sim::{spawn, Runtime};

/// Static erasure-coded multi-cloud client (RACS/DepSky-like).
pub struct MultiCloudBenchmark {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    redundancy: RedundancyConfig,
    codec: Arc<Codec>,
    connections: usize,
    chunk_size: usize,
    retry: RetryPolicy,
    /// name → per-segment (id, len, blocks).
    manifest: Mutex<HashMap<String, Vec<(SegmentId, u64, Vec<BlockRef>)>>>,
}

impl std::fmt::Debug for MultiCloudBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCloudBenchmark")
            .field("clouds", &self.clouds)
            .finish()
    }
}

impl MultiCloudBenchmark {
    /// Creates the baseline with the given redundancy and 4 MB fixed
    /// segments.
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        redundancy: RedundancyConfig,
        connections: usize,
    ) -> Self {
        let codec = Arc::new(Codec::for_config(&redundancy).expect("validated config"));
        MultiCloudBenchmark {
            rt,
            clouds,
            redundancy,
            codec,
            connections: connections.max(1),
            chunk_size: 4 * 1024 * 1024,
            retry: RetryPolicy::new(),
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// Chunk size override (tests use smaller segments).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1024);
        self
    }

    /// Uploads `data`: fixed-size segments, each erasure-coded into
    /// exactly the normal parity blocks, each cloud receiving its fair
    /// share — statically, with no reaction to cloud speed.
    ///
    /// Like DepSky/RACS writes, the operation *reports* the time at
    /// which every segment had `k` blocks acknowledged (the data is
    /// then durable and readable); pushing the remaining fair-share
    /// blocks continues before the call returns but is not counted —
    /// mirroring how the paper measures UniDrive's *available time*.
    ///
    /// # Errors
    ///
    /// The first block failure after retries (a failed block is retried
    /// with backoff; only persistent failure surfaces).
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let t0 = self.rt.now();
        let n = self.clouds.len();
        let k = self.codec.k();
        let fair = self.redundancy.fair_share();
        let seg_count = data.chunks(self.chunk_size).count().max(1);
        let mut segments = Vec::new();
        // Static plan: per cloud, the list of (segment idx, path, bytes).
        let mut per_cloud: Vec<Vec<(usize, String, Bytes)>> = vec![Vec::new(); n];
        for (si, chunk) in data.chunks(self.chunk_size).enumerate() {
            let id = SegmentId(unidrive_crypto::Sha1::digest(chunk));
            let mut blocks = Vec::new();
            for i in 0..(fair * n) as u16 {
                let cloud = (i as usize) % n;
                per_cloud[cloud].push((
                    si,
                    block_path(&id, i),
                    self.codec.encode_block(chunk, i as usize),
                ));
                blocks.push(BlockRef {
                    index: i,
                    cloud: cloud as u16,
                });
            }
            segments.push((id, chunk.len() as u64, blocks));
        }
        // Shared availability accounting: per-segment ack counts and the
        // instant every segment reached k acks.
        let acks = Arc::new(Mutex::new((vec![0usize; seg_count], 0usize, None::<Duration>)));
        let errors: Arc<Mutex<Option<CloudError>>> = Arc::new(Mutex::new(None));
        let mut tasks = Vec::new();
        for (cloud_idx, work) in per_cloud.into_iter().enumerate() {
            let cloud = Arc::clone(self.clouds.get(unidrive_cloud::CloudId(cloud_idx)));
            let rt = Arc::clone(&self.rt);
            let retry = self.retry.clone();
            let errors = Arc::clone(&errors);
            let acks = Arc::clone(&acks);
            let conns = self.connections;
            tasks.push(spawn(&self.rt, &format!("bench-up-{cloud_idx}"), move || {
                let queue = Arc::new(Mutex::new(work));
                let mut inner = Vec::new();
                for w in 0..conns {
                    let cloud = Arc::clone(&cloud);
                    let rt2 = Arc::clone(&rt);
                    let retry = retry.clone();
                    let queue = Arc::clone(&queue);
                    let errors = Arc::clone(&errors);
                    let acks = Arc::clone(&acks);
                    let t0 = t0;
                    inner.push(spawn(&rt, &format!("bench-up-{cloud_idx}-{w}"), move || {
                        loop {
                            let Some((si, path, bytes)) = queue.lock().pop() else {
                                break;
                            };
                            // Persistent: two bounded retry rounds before
                            // surfacing the failure.
                            let mut result =
                                retrying(&rt2, &retry, || cloud.upload(&path, bytes.clone()));
                            if result.is_err() {
                                rt2.sleep(Duration::from_secs(2));
                                result = retrying(&rt2, &retry, || {
                                    cloud.upload(&path, bytes.clone())
                                });
                            }
                            match result {
                                Ok(()) => {
                                    let mut a = acks.lock();
                                    a.0[si] += 1;
                                    if a.0[si] == k {
                                        a.1 += 1;
                                        if a.1 == a.0.len() {
                                            a.2 = Some(
                                                rt2.now().saturating_duration_since(t0),
                                            );
                                        }
                                    }
                                }
                                Err(e) => {
                                    *errors.lock() = Some(e);
                                    break;
                                }
                            }
                        }
                    }));
                }
                for t in inner {
                    t.join();
                }
            }));
        }
        for t in tasks {
            t.join();
        }
        let available = acks.lock().2;
        let error = errors.lock().take();
        match (available, error) {
            // Availability reached: later failures only degrade
            // reliability, not the reported metric.
            (Some(d), _) => {
                self.manifest.lock().insert(name.to_owned(), segments);
                Ok(d)
            }
            (None, Some(e)) => Err(e),
            (None, None) => Ok(self.rt.now().saturating_duration_since(t0)),
        }
    }

    /// Downloads `name` by statically fetching the first `k` blocks of
    /// every segment (one per cloud, round-robin) — no reassignment if a
    /// chosen cloud happens to be slow, which is precisely the behaviour
    /// UniDrive's dynamic scheduling improves on. Falls back to the
    /// remaining blocks only on hard errors.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] for unknown names, or a block failure
    /// when fallbacks are exhausted.
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        let segments = self
            .manifest
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| CloudError::not_found(name))?;
        let t0 = self.rt.now();
        let k = self.codec.k();
        let mut out = Vec::new();
        // Static plan across all segments; fetch each segment's first k
        // blocks in parallel, then decode.
        for (id, len, blocks) in &segments {
            let chosen: Vec<BlockRef> = blocks.iter().take(k).copied().collect();
            let fallback: Vec<BlockRef> = blocks.iter().skip(k).copied().collect();
            let results: Arc<Mutex<Vec<Option<(u16, Bytes)>>>> =
                Arc::new(Mutex::new(vec![None; chosen.len()]));
            let fallback = Arc::new(Mutex::new(fallback));
            let errors: Arc<Mutex<Option<CloudError>>> = Arc::new(Mutex::new(None));
            let mut tasks = Vec::new();
            for (slot, block) in chosen.into_iter().enumerate() {
                let clouds = self.clouds.clone();
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                let results = Arc::clone(&results);
                let fallback = Arc::clone(&fallback);
                let errors = Arc::clone(&errors);
                let id = *id;
                tasks.push(spawn(&self.rt, &format!("bench-dl-{slot}"), move || {
                    let mut block = block;
                    loop {
                        let cloud = clouds.get(unidrive_cloud::CloudId(block.cloud as usize));
                        match retrying(&rt, &retry, || {
                            cloud.download(&block_path(&id, block.index))
                        }) {
                            Ok(data) => {
                                results.lock()[slot] = Some((block.index, data));
                                return;
                            }
                            Err(e) => {
                                // Hard failure: try a fallback block.
                                let next = fallback.lock().pop();
                                match next {
                                    Some(b) => block = b,
                                    None => {
                                        *errors.lock() = Some(e);
                                        return;
                                    }
                                }
                            }
                        }
                    }
                }));
            }
            for t in tasks {
                t.join();
            }
            if let Some(e) = errors.lock().take() {
                return Err(e);
            }
            let collected = results.lock();
            let shares: Vec<(usize, &[u8])> = collected
                .iter()
                .map(|s| {
                    let (i, b) = s.as_ref().expect("no error implies all shares");
                    (*i as usize, b.as_ref())
                })
                .collect();
            let plain = self
                .codec
                .decode(&shares, *len as usize)
                .map_err(|e| CloudError::transient(format!("decode failed: {e}")))?;
            out.extend_from_slice(&plain);
        }
        Ok((self.rt.now().saturating_duration_since(t0), out))
    }

    /// Known block locations of `name` (for harnesses that kill clouds).
    pub fn manifest_of(&self, name: &str) -> Option<Vec<(SegmentId, u64, Vec<BlockRef>)>> {
        self.manifest.lock().get(name).cloned()
    }

    /// Adopts a manifest produced by another client over the same
    /// backing clouds (the sink side of a sync notification).
    pub fn adopt_manifest(&self, name: &str, manifest: Vec<(SegmentId, u64, Vec<BlockRef>)>) {
        self.manifest.lock().insert(name.to_owned(), manifest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_sim::SimRuntime;

    fn set(sim: &Arc<SimRuntime>, rates: &[f64]) -> (CloudSet, Vec<Arc<SimCloud>>) {
        let mut handles = Vec::new();
        let members = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let c = Arc::new(SimCloud::new(
                    sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(r, r * 5.0),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        (CloudSet::new(members), handles)
    }

    fn content(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn round_trip() {
        let sim = SimRuntime::new(1);
        let (clouds, _) = set(&sim, &[1e6; 5]);
        let client = MultiCloudBenchmark::new(
            sim.clone().as_runtime(),
            clouds,
            RedundancyConfig::paper_default(),
            3,
        )
        .with_chunk_size(128 * 1024);
        let data = content(500_000);
        client.upload("f", data.clone()).unwrap();
        let (_, restored) = client.download("f").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn survives_up_to_n_minus_kr_outages() {
        let sim = SimRuntime::new(2);
        let (clouds, handles) = set(&sim, &[1e6; 5]);
        let client = MultiCloudBenchmark::new(
            sim.clone().as_runtime(),
            clouds,
            RedundancyConfig::paper_default(),
            3,
        )
        .with_chunk_size(128 * 1024);
        let data = content(300_000);
        client.upload("f", data.clone()).unwrap();
        handles[0].set_available(false);
        handles[2].set_available(false);
        let (_, restored) = client.download("f").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn upload_availability_waits_for_statically_chosen_clouds() {
        // The benchmark's weakness vs UniDrive: with exactly one block
        // per cloud and no over-provisioning, a segment becomes
        // available only when the k-th fastest cloud delivers. UniDrive
        // would mint extra blocks on the two fast clouds instead.
        let sim = SimRuntime::new(3);
        let (clouds, _) = set(&sim, &[10e6, 10e6, 0.5e6, 0.5e6, 0.5e6]);
        let client = MultiCloudBenchmark::new(
            sim.clone().as_runtime(),
            clouds,
            RedundancyConfig::paper_default(),
            3,
        )
        .with_chunk_size(512 * 1024);
        let data = content(3_000_000); // 6 segments, block ~171 KB
        let took = client.upload("f", data).unwrap();
        // The third block of each segment comes from a slow cloud
        // (6 blocks of ~171 KB over 3 connections at 0.5 MB/s each
        // ≈ 0.7 s) while the two fast clouds idle after ~35 ms.
        assert!(took.as_secs_f64() > 0.5, "took {took:?}");
    }
}
