//! **Figure 14** — availability and download performance under n
//! unavailable clouds (§7.2): with K_r = 3 and K_s = 2, downloads keep
//! succeeding through n = 2 (and usually n = 3 thanks to
//! over-provisioned blocks), fail by design at n = 4, and get slower as
//! fewer (and slower) clouds remain.

use std::time::Duration;

use unidrive_bench::{metrics_out, systems_at_observed, ExperimentScale};
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{random_bytes, site_by_name, Summary, TextTable};

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = metrics_out::from_args();
    let size = scale.large_file;
    let site = site_by_name("Tokyo").expect("site");
    let repeats = 12; // the paper repeats each n twelve times

    println!(
        "Figure 14: download success and time vs unavailable clouds, {} MB, Tokyo\n",
        size / (1024 * 1024)
    );
    let mut table = TextTable::new(&["n dead", "success", "avg secs", "min-max secs"]);
    for n in 0..=4usize {
        let sim = SimRuntime::new(1400 + n as u64);
        let sys = systems_at_observed(&sim, site, scale.theta, &metrics.obs);
        let data = random_bytes(size, 14);
        // Pre-upload with the reliability requirement fulfilled (let the
        // background reliability phase complete before the outages).
        sys.unidrive.upload("payload", data.clone()).expect("upload");
        sim.sleep(Duration::from_secs(3600));
        // Disable n clouds (slowest first, like losing the weakest
        // providers; the paper disables randomly — the shape is the
        // same).
        for handle in sys.handles.iter().rev().take(n) {
            handle.set_available(false);
        }
        let mut times = Vec::new();
        let mut successes = 0usize;
        for _ in 0..repeats {
            if let Ok((took, restored)) = sys.unidrive.download("payload") {
                assert_eq!(restored, data.to_vec(), "integrity");
                successes += 1;
                times.push(took.as_secs_f64());
            }
            sim.sleep(Duration::from_secs(300));
        }
        let stats = Summary::of(&times);
        table.row(vec![
            format!("{n}"),
            format!("{successes}/{repeats}"),
            stats.map(|s| format!("{:.1}", s.mean)).unwrap_or("-".into()),
            stats
                .map(|s| format!("{:.1}-{:.1}", s.min, s.max))
                .unwrap_or("-".into()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(paper: works through n = 3 thanks to over-provisioned blocks, impossible at\n\
         n = 4 because K_s = 2 caps any single cloud below k blocks; performance\n\
         degrades as fewer clouds remain)"
    );
    if let Some(path) = metrics.write() {
        println!("metrics snapshot written to {path}");
    }
}
