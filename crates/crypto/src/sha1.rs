//! SHA-1, implemented from FIPS 180-1.
//!
//! UniDrive content-addresses segments by the SHA-1 of their bytes
//! (paper §6.1): identical content — even across files — maps to the
//! same segment name, enabling deduplication and transfer suppression.
//! (SHA-1 is cryptographically broken for collision resistance today; we
//! implement it because it is what the paper specifies. Nothing in the
//! design depends on collision resistance against adversarial inputs.)

use std::fmt;

/// A 160-bit SHA-1 digest.
///
/// # Examples
///
/// ```
/// use unidrive_crypto::Sha1;
///
/// let d = Sha1::digest(b"abc");
/// assert_eq!(d.to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Lowercase hex representation (40 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Parses a 40-char hex string.
    ///
    /// Returns `None` for malformed input.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for i in 0..20 {
            out[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Digest(out))
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use unidrive_crypto::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), Sha1::digest(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // `update` above adjusted total_len; we only care about padding.
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        self.total_len = 0; // silence further accounting; we pad manually
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        let cases = [
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(Sha1::digest(input.as_bytes()).to_hex(), expect, "{input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = Sha1::digest(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(20)), None);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha1::digest(b"a"), Sha1::digest(b"b"));
        assert_ne!(Sha1::digest(b""), Sha1::digest(b"\0"));
    }
}
