//! Randomized property tests of the metadata layer: codec round-trips,
//! delta-log reconstruction, and three-way merge invariants. Driven by
//! the workspace's deterministic `SimRng` (seeded, so failures
//! reproduce exactly).

use unidrive_crypto::{Digest, Sha1};
use unidrive_meta::{
    compact, diff, fold, merge3, BlockRef, DeltaLog, MetaOp, OplogBase, SegmentId, Snapshot,
    SyncFolderImage, VersionStamp,
};
use unidrive_sim::SimRng;

/// A small random image: up to 12 files with short random paths, each
/// with up to 3 random segment tags.
fn random_image(rng: &mut SimRng) -> SyncFolderImage {
    let mut image = SyncFolderImage::new();
    let n_files = rng.below(12) as usize;
    for _ in 0..n_files {
        let path = random_path(rng);
        let mtime = rng.below(u16::MAX as u64 + 1);
        let size = 1 + rng.below(999_999);
        let n_segs = 1 + rng.below(3) as usize;
        let segments: Vec<SegmentId> = (0..n_segs)
            .map(|_| SegmentId(Sha1::digest(&[rng.next_u64() as u8])))
            .collect();
        for id in &segments {
            image.ensure_segment(*id, size);
        }
        image.upsert_file(
            &path,
            Snapshot {
                mtime_ns: mtime,
                size,
                segments,
            },
        );
    }
    image
}

fn random_path(rng: &mut SimRng) -> String {
    let segment = |rng: &mut SimRng| {
        let len = 1 + rng.below(8) as usize;
        (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect::<String>()
    };
    let depth = rng.below(3);
    let mut path = segment(rng);
    for _ in 0..depth {
        path.push('/');
        path.push_str(&segment(rng));
    }
    path
}

/// encode/decode round-trips arbitrary images.
#[test]
fn image_codec_round_trips() {
    let mut rng = SimRng::seed_from_u64(0x4E01);
    for _ in 0..48 {
        let image = random_image(&mut rng);
        let restored = SyncFolderImage::decode(&image.encode()).unwrap();
        assert_eq!(restored, image);
    }
}

/// Any single-byte corruption of the encoded image is rejected.
#[test]
fn image_codec_rejects_bitflips() {
    let mut rng = SimRng::seed_from_u64(0x4E02);
    for _ in 0..48 {
        let image = random_image(&mut rng);
        let mut bytes = image.encode().to_vec();
        let idx = rng.below(bytes.len() as u64) as usize;
        let flip = 1 + rng.below(255) as u8;
        bytes[idx] ^= flip;
        // Either the checksum catches it (virtually always) or the
        // decode differs; it must never silently equal the original.
        match SyncFolderImage::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, image),
        }
    }
}

/// Applying records_for(from, to) onto `from` reproduces `to`'s files
/// and block locations.
#[test]
fn delta_records_reconstruct() {
    let mut rng = SimRng::seed_from_u64(0x4E03);
    for _ in 0..48 {
        let from = random_image(&mut rng);
        let to = random_image(&mut rng);
        let mut log = DeltaLog::new(from.version.clone());
        log.append(DeltaLog::records_for(&from, &to), to.version.clone());
        let mut rebuilt = from.clone();
        log.apply_to(&mut rebuilt);
        // Compare the file trees.
        let files = |img: &SyncFolderImage| {
            img.files()
                .map(|(p, e)| (p.to_owned(), e.snapshot.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(files(&rebuilt), files(&to));
        // Every block location in `to` is present in the rebuilt pool.
        for (id, entry) in to.segments() {
            if entry.refcount > 0 {
                let rebuilt_entry = rebuilt.segment(id).unwrap();
                for b in &entry.blocks {
                    assert!(rebuilt_entry.blocks.contains(b));
                }
            }
        }
    }
}

/// diff(x, x) is empty; diff(a, b) marks exactly the paths whose
/// snapshots differ.
#[test]
fn diff_is_sound() {
    let mut rng = SimRng::seed_from_u64(0x4E04);
    for _ in 0..48 {
        let a = random_image(&mut rng);
        let b = random_image(&mut rng);
        assert!(diff(&a, &a.clone()).is_empty());
        let d = diff(&a, &b);
        for (path, _) in b.files() {
            let same = a
                .file(path)
                .is_some_and(|e| e.snapshot == b.file(path).unwrap().snapshot);
            assert_eq!(d.get(path).is_none(), same);
        }
    }
}

/// Merge with an unchanged cloud side applies exactly the local
/// changes (no conflicts).
#[test]
fn merge_with_unchanged_cloud_is_local() {
    let mut rng = SimRng::seed_from_u64(0x4E05);
    for _ in 0..48 {
        let original = random_image(&mut rng);
        let local = random_image(&mut rng);
        let out = merge3(&original, &local, &original, "dev");
        assert!(out.conflicts.is_empty());
        let files = |img: &SyncFolderImage| {
            img.files()
                .map(|(p, e)| (p.to_owned(), e.snapshot.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(files(&out.image), files(&local));
    }
}

/// Merge never loses a file that only one side touched, and refcounts
/// always cover every referenced segment.
#[test]
fn merge_preserves_disjoint_changes() {
    let mut rng = SimRng::seed_from_u64(0x4E06);
    for _ in 0..48 {
        let original = random_image(&mut rng);
        let local = random_image(&mut rng);
        let cloud = random_image(&mut rng);
        let out = merge3(&original, &local, &cloud, "dev");
        let dl = diff(&original, &local);
        let dc = diff(&original, &cloud);
        for (path, change) in dl.iter() {
            if dc.get(path).is_none() {
                match change {
                    unidrive_meta::EntryChange::Upsert(snap) => {
                        assert_eq!(&out.image.file(path).unwrap().snapshot, snap);
                    }
                    unidrive_meta::EntryChange::Delete => {
                        assert!(out.image.file(path).is_none());
                    }
                }
            }
        }
        // Pool covers every snapshot reference with a positive refcount.
        for (_, entry) in out.image.files() {
            for id in &entry.snapshot.segments {
                assert!(out.image.segment(id).unwrap().refcount > 0);
            }
        }
    }
}

/// Version files round-trip.
#[test]
fn version_stamp_round_trips() {
    let mut rng = SimRng::seed_from_u64(0x4E07);
    for _ in 0..64 {
        let name_len = 1 + rng.below(16) as usize;
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
        let device: String = (0..name_len)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
            .collect();
        let v = VersionStamp {
            device,
            counter: rng.next_u64(),
            timestamp_ns: rng.next_u64(),
        };
        assert_eq!(VersionStamp::decode(&v.encode()).unwrap(), v);
    }
}

const FOLDER: &str = "root";

/// Random per-device op chains over random image transitions: each
/// device writes `per_device` ops with strictly increasing `seq` and
/// a fleet-wide drifting lamport clock, the shape the oplog plane
/// folds in production.
fn random_ops(rng: &mut SimRng, devices: usize, per_device: usize) -> Vec<MetaOp> {
    let mut ops = Vec::new();
    let mut lamport = 0u64;
    for d in 0..devices {
        let device = format!("dev{d}");
        let mut prev = SyncFolderImage::new();
        for seq in 1..=per_device as u64 {
            let next = random_image(rng);
            lamport += 1 + rng.below(3);
            ops.push(MetaOp {
                device: device.clone(),
                seq,
                lamport,
                base_lamport: lamport.saturating_sub(1 + rng.below(4)),
                stamp_ns: rng.next_u64() >> 12,
                records: DeltaLog::records_for(&prev, &next),
            });
            prev = next;
        }
    }
    ops
}

fn shuffled(rng: &mut SimRng, ops: &[MetaOp]) -> Vec<MetaOp> {
    let mut out = ops.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        out.swap(i, j);
    }
    out
}

/// Folding the same op set in any delivery order produces the same
/// image, byte for byte — the oplog plane's convergence property.
#[test]
fn op_fold_is_permutation_invariant() {
    let mut rng = SimRng::seed_from_u64(0x4E09);
    for _ in 0..32 {
        let devices = 1 + rng.below(4) as usize;
        let per_device = 1 + rng.below(4) as usize;
        let ops = random_ops(&mut rng, devices, per_device);
        let base = OplogBase::new();
        let reference = fold(&base, &ops, FOLDER);
        for _ in 0..4 {
            let permuted = shuffled(&mut rng, &ops);
            let outcome = fold(&base, &permuted, FOLDER);
            assert_eq!(outcome.base.image.encode(), reference.base.image.encode());
            assert_eq!(outcome.base.watermark, reference.base.watermark);
            assert_eq!(outcome.applied, reference.applied);
        }
    }
}

/// Delivering every op twice (and thrice) changes nothing: dedup by
/// deterministic op id makes redelivery harmless.
#[test]
fn op_fold_dedup_is_idempotent() {
    let mut rng = SimRng::seed_from_u64(0x4E0A);
    for _ in 0..32 {
        let devices = 1 + rng.below(3) as usize;
        let per_device = 1 + rng.below(4) as usize;
        let ops = random_ops(&mut rng, devices, per_device);
        let base = OplogBase::new();
        let once = fold(&base, &ops, FOLDER);
        let mut doubled = ops.clone();
        doubled.extend(ops.iter().cloned());
        doubled.extend(ops.iter().cloned());
        let tripled = fold(&base, &shuffled(&mut rng, &doubled), FOLDER);
        assert_eq!(tripled.base.image.encode(), once.base.image.encode());
        assert_eq!(tripled.applied, once.applied);
        assert_eq!(tripled.duplicates, 2 * ops.len());
    }
}

/// Compacting a log then folding nothing equals folding the log
/// directly — and replaying the compacted-away ops is a no-op (the
/// watermark filters every one of them).
#[test]
fn fold_of_compacted_log_matches_fold_of_log() {
    let mut rng = SimRng::seed_from_u64(0x4E0B);
    for _ in 0..32 {
        let devices = 1 + rng.below(4) as usize;
        let per_device = 1 + rng.below(4) as usize;
        let ops = random_ops(&mut rng, devices, per_device);
        let base = OplogBase::new();
        let direct = fold(&base, &ops, FOLDER);
        let compacted = compact(&base, &ops, FOLDER);
        assert_eq!(compacted.image.encode(), direct.base.image.encode());
        let replayed = fold(&compacted, &ops, FOLDER);
        assert_eq!(replayed.applied, 0, "all ops below the base watermark");
        assert_eq!(replayed.base.image.encode(), direct.base.image.encode());
        // The compacted base round-trips through its codec.
        let restored = OplogBase::decode(&compacted.encode()).unwrap();
        assert_eq!(restored.image.encode(), compacted.image.encode());
        assert_eq!(restored.watermark, compacted.watermark);
    }
}

/// Block add/remove on segment entries is idempotent and consistent.
#[test]
fn block_bookkeeping() {
    let mut rng = SimRng::seed_from_u64(0x4E08);
    for _ in 0..48 {
        let mut image = SyncFolderImage::new();
        let id = SegmentId(Digest([7; 20]));
        image.ensure_segment(id, 1);
        let mut model: std::collections::BTreeSet<(u16, u16)> = Default::default();
        let n_ops = rng.below(32) as usize;
        for _ in 0..n_ops {
            let op = rng.next_u64() as u8;
            let index = rng.below(8) as u16;
            let cloud = rng.below(4) as u16;
            let block = BlockRef { index, cloud };
            if op.is_multiple_of(2) {
                assert_eq!(image.record_block(id, block), model.insert((index, cloud)));
            } else {
                assert_eq!(image.remove_block(&id, block), model.remove(&(index, cloud)));
            }
        }
        let stored: std::collections::BTreeSet<(u16, u16)> = image
            .segment(&id)
            .unwrap()
            .blocks
            .iter()
            .map(|b| (b.index, b.cloud))
            .collect();
        assert_eq!(stored, model);
    }
}
