//! A small, versioned, checksummed binary codec for metadata files.
//!
//! UniDrive stores its metadata *as files on the clouds*, so it needs a
//! self-describing on-wire format. We use a hand-rolled length-prefixed
//! encoding (no external serialization crates): every top-level message
//! carries a magic tag, a format version, and a trailing SHA-1-derived
//! checksum so corrupted or foreign files are rejected instead of
//! misparsed.

use unidrive_util::bytes::Bytes;
use unidrive_crypto::Sha1;

/// Error decoding a metadata buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the expected field.
    UnexpectedEof {
        /// What was being read.
        context: &'static str,
    },
    /// The magic tag did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version found in the buffer.
        found: u8,
    },
    /// Trailing checksum mismatch (corruption or wrong key).
    BadChecksum,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length or count field is implausibly large for the buffer.
    BadLength {
        /// The offending length.
        len: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { context } => {
                write!(f, "unexpected end of buffer while reading {context}")
            }
            DecodeError::BadMagic => write!(f, "bad magic tag"),
            DecodeError::BadVersion { found } => write!(f, "unsupported format version {found}"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BadLength { len } => write!(f, "implausible length {len}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a message with a 4-byte magic and a format version.
    pub fn with_header(magic: [u8; 4], version: u8) -> Self {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&magic);
        w.buf.push(version);
        w
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (big-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` (big-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` (big-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a fixed-size array without a length prefix.
    pub fn put_fixed(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Finishes the message: appends an 8-byte checksum (truncated SHA-1
    /// of everything so far) and returns the buffer.
    pub fn finish(mut self) -> Bytes {
        let digest = Sha1::digest(&self.buf);
        self.buf.extend_from_slice(&digest.as_bytes()[..8]);
        Bytes::from(self.buf)
    }

    /// Bytes written so far (pre-checksum).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential decoder over a checksummed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Verifies the magic, version and trailing checksum, returning a
    /// reader positioned after the header.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`].
    pub fn with_header(
        data: &'a [u8],
        magic: [u8; 4],
        expect_version: u8,
    ) -> Result<Self, DecodeError> {
        if data.len() < 4 + 1 + 8 {
            return Err(DecodeError::UnexpectedEof { context: "header" });
        }
        let (body, checksum) = data.split_at(data.len() - 8);
        let digest = Sha1::digest(body);
        if &digest.as_bytes()[..8] != checksum {
            return Err(DecodeError::BadChecksum);
        }
        if body[..4] != magic {
            return Err(DecodeError::BadMagic);
        }
        if body[4] != expect_version {
            return Err(DecodeError::BadVersion { found: body[4] });
        }
        Ok(Reader { buf: body, pos: 5 })
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::UnexpectedEof { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads length-prefixed bytes.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u32(context)? as usize;
        if len > self.buf.len() {
            return Err(DecodeError::BadLength { len: len as u64 });
        }
        self.take(len, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, DecodeError> {
        std::str::from_utf8(self.get_bytes(context)?)
            .map(str::to_owned)
            .map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads `N` bytes without a length prefix.
    pub fn get_fixed<const N: usize>(
        &mut self,
        context: &'static str,
    ) -> Result<[u8; N], DecodeError> {
        Ok(self.take(N, context)?.try_into().expect("N bytes"))
    }

    /// Whether every body byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TEST";

    #[test]
    fn round_trip_all_field_types() {
        let mut w = Writer::with_header(MAGIC, 1);
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_fixed(&[9; 4]);
        let buf = w.finish();

        let mut r = Reader::with_header(&buf, MAGIC, 1).unwrap();
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 300);
        assert_eq!(r.get_u32("c").unwrap(), 70_000);
        assert_eq!(r.get_u64("d").unwrap(), 1 << 40);
        assert_eq!(r.get_str("e").unwrap(), "héllo");
        assert_eq!(r.get_bytes("f").unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_fixed::<4>("g").unwrap(), [9; 4]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = Writer::with_header(MAGIC, 1);
        w.put_u64(42);
        let buf = w.finish();
        let mut bad = buf.to_vec();
        bad[7] ^= 1;
        assert_eq!(
            Reader::with_header(&bad, MAGIC, 1).unwrap_err(),
            DecodeError::BadChecksum
        );
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let w = Writer::with_header(MAGIC, 2);
        let buf = w.finish();
        assert_eq!(
            Reader::with_header(&buf, *b"OTHR", 2).unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            Reader::with_header(&buf, MAGIC, 1).unwrap_err(),
            DecodeError::BadVersion { found: 2 }
        );
    }

    #[test]
    fn truncated_buffer_rejected() {
        let mut w = Writer::with_header(MAGIC, 1);
        w.put_str("hello");
        let buf = w.finish();
        for cut in [0usize, 5, buf.len() - 1] {
            assert!(Reader::with_header(&buf[..cut], MAGIC, 1).is_err());
        }
    }

    #[test]
    fn eof_mid_field_reported_with_context() {
        let mut w = Writer::with_header(MAGIC, 1);
        w.put_u8(1);
        let buf = w.finish();
        let mut r = Reader::with_header(&buf, MAGIC, 1).unwrap();
        let _ = r.get_u8("first").unwrap();
        assert_eq!(
            r.get_u64("second").unwrap_err(),
            DecodeError::UnexpectedEof { context: "second" }
        );
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        // Hand-craft a buffer with a huge length prefix but a valid
        // checksum.
        let mut w = Writer::with_header(MAGIC, 1);
        w.put_u32(u32::MAX);
        let buf = w.finish();
        let mut r = Reader::with_header(&buf, MAGIC, 1).unwrap();
        assert!(matches!(
            r.get_bytes("blob").unwrap_err(),
            DecodeError::BadLength { .. }
        ));
    }
}
