//! The UniDrive client: ties the local folder, the data plane, the
//! quorum lock and the metadata store into Algorithm 1 (paper §5.2).
//!
//! One [`sync_once`](UniDriveClient::sync_once) call performs one pass:
//!
//! 1. scan the folder for local updates (the ChangedFileList);
//! 2. if any exist: upload their data blocks *first* (freely, without
//!    coordination — blocks are immutable), then take the quorum lock,
//!    merge with any pending cloud update, commit metadata (delta-sync,
//!    compacting when past λ), release;
//! 3. otherwise: check the small version file; if the cloud moved,
//!    download the cloud update and materialize it into the folder.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_cloud::CloudSet;
use unidrive_meta::{
    merge3, MetaMode, MetaPlane, PlaneError, SegmentId, Snapshot, SyncFolderImage, VersionStamp,
};
use unidrive_obs::{Event, SpanId};
use unidrive_sim::{Runtime, SimRng};

use crate::control::MetaError;
use crate::dataplane::{DataPlane, UploadRequest};
use crate::upload::{BlockSink, UploadOptions};
use crate::folder::{LocalChange, LocalStat, SyncFolder};
use crate::lock::{LockConfig, LockError};
use crate::plan::DataPlaneConfig;
use crate::plane::build_plane;
use crate::DownloadError;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Device name (must be unique per device of the user).
    pub device: String,
    /// Passphrase the metadata key is derived from.
    pub passphrase: String,
    /// Data-plane parameters.
    pub data: DataPlaneConfig,
    /// Lock protocol parameters.
    pub lock: LockConfig,
    /// τ: how often [`run_for`](UniDriveClient::run_for) polls for cloud
    /// updates.
    pub poll_interval: Duration,
    /// Delta-sync compaction ratio (paper: 0.25 of the base size).
    pub delta_ratio: f64,
    /// Delta-sync compaction floor in bytes (paper: 10 KB).
    pub delta_floor: usize,
    /// Which metadata plane coordinates commits (default: the paper's
    /// quorum-locked plane).
    pub meta_mode: MetaMode,
}

impl ClientConfig {
    /// The paper's defaults for a device named `device`.
    pub fn paper_default(device: impl Into<String>) -> Self {
        ClientConfig {
            device: device.into(),
            passphrase: "unidrive-default".into(),
            data: DataPlaneConfig::paper_default(),
            lock: LockConfig::default(),
            poll_interval: Duration::from_secs(30),
            delta_ratio: 0.25,
            delta_floor: 10 * 1024,
            meta_mode: MetaMode::Lock,
        }
    }
}

/// Error from a sync pass.
#[derive(Debug)]
pub enum SyncError {
    /// Could not acquire the metadata lock.
    Lock(LockError),
    /// Metadata could not be read or committed.
    Meta(MetaError),
    /// A cloud-update file could not be reconstructed.
    Download(DownloadError),
    /// Local folder I/O failed.
    Folder(crate::folder::FolderError),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Lock(e) => write!(f, "lock: {e}"),
            SyncError::Meta(e) => write!(f, "metadata: {e}"),
            SyncError::Download(e) => write!(f, "download: {e}"),
            SyncError::Folder(e) => write!(f, "folder: {e}"),
        }
    }
}

impl std::error::Error for SyncError {}

impl From<LockError> for SyncError {
    fn from(e: LockError) -> Self {
        SyncError::Lock(e)
    }
}

impl From<MetaError> for SyncError {
    fn from(e: MetaError) -> Self {
        SyncError::Meta(e)
    }
}

impl From<PlaneError> for SyncError {
    fn from(e: PlaneError) -> Self {
        // Plane errors keep the pre-refactor surface: lock-shaped
        // failures report as `Lock`, quorum read/write failures as
        // `Meta`, so callers matching on the old variants still work.
        match e {
            PlaneError::Contended { attempts } => SyncError::Lock(LockError::Contended { attempts }),
            PlaneError::QuorumUnreachable { reachable, quorum } => {
                SyncError::Lock(LockError::QuorumUnreachable { reachable, quorum })
            }
            PlaneError::QuorumWriteFailed { acked, quorum } => {
                SyncError::Meta(MetaError::QuorumWriteFailed { acked, quorum })
            }
            PlaneError::Unreadable => SyncError::Meta(MetaError::Unreadable),
        }
    }
}

/// What one sync pass did.
#[derive(Debug, Clone, Default)]
pub struct SyncReport {
    /// Files whose content was uploaded and committed.
    pub uploaded: Vec<String>,
    /// Files written locally from a cloud update.
    pub downloaded: Vec<String>,
    /// Files deleted locally from a cloud update.
    pub deleted_locally: Vec<String>,
    /// Deletions committed to the cloud.
    pub deleted_remotely: Vec<String>,
    /// Paths with unresolved conflicts after this pass.
    pub conflicts: Vec<String>,
    /// Files whose upload did not finish (will retry next pass).
    pub deferred: Vec<String>,
}

impl SyncReport {
    /// Whether the pass changed nothing anywhere.
    pub fn is_noop(&self) -> bool {
        self.uploaded.is_empty()
            && self.downloaded.is_empty()
            && self.deleted_locally.is_empty()
            && self.deleted_remotely.is_empty()
            && self.deferred.is_empty()
    }
}

/// A UniDrive device: one sync folder synchronized through N clouds.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use unidrive_cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
/// use unidrive_core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
/// use unidrive_erasure::RedundancyConfig;
/// use unidrive_sim::{SimRng, SimRuntime};
///
/// let sim = SimRuntime::new(7);
/// let clouds = CloudSet::new(
///     (0..5)
///         .map(|i| {
///             Arc::new(SimCloud::new(&sim, format!("c{i}"),
///                 SimCloudConfig::steady(2e6, 8e6))) as Arc<dyn CloudStore>
///         })
///         .collect(),
/// );
/// let folder = MemFolder::new();
/// let mut config = ClientConfig::paper_default("laptop");
/// config.data = DataPlaneConfig::with_params(
///     RedundancyConfig::new(5, 3, 3, 2).unwrap(), 64 * 1024);
/// let mut client = UniDriveClient::new(
///     sim.clone().as_runtime(), clouds,
///     folder.clone() as Arc<dyn SyncFolder>, config, SimRng::seed_from_u64(1));
///
/// folder.write("hello.txt", b"hi", 1).unwrap();
/// let report = client.sync_once().unwrap();
/// assert_eq!(report.uploaded, vec!["hello.txt"]);
/// assert!(client.sync_once().unwrap().is_noop());
/// ```
pub struct UniDriveClient {
    rt: Arc<dyn Runtime>,
    folder: Arc<dyn SyncFolder>,
    plane: DataPlane,
    /// The metadata coordination plane (quorum-locked or oplog).
    meta: Box<dyn MetaPlane>,
    config: ClientConfig,
    /// v_o: the image as of the last successful sync.
    original: SyncFolderImage,
    /// Local (size, mtime) of every path as of the last sync — the
    /// reference for change detection on *this* device.
    shadow: BTreeMap<String, LocalStat>,
    /// This device's commit counter.
    counter: u64,
    /// Placements reported by background reliability workers since the
    /// last commit ("set asynchronously via callback", §5.1).
    pending_blocks: BlockSink,
}

impl std::fmt::Debug for UniDriveClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniDriveClient")
            .field("device", &self.config.device)
            .field("files", &self.original.file_count())
            .finish()
    }
}

impl UniDriveClient {
    /// Creates a client for `folder` over `clouds`.
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        folder: Arc<dyn SyncFolder>,
        config: ClientConfig,
        rng: SimRng,
    ) -> Self {
        let plane = DataPlane::new(Arc::clone(&rt), clouds.clone(), config.data.clone());
        let meta = build_plane(
            config.meta_mode,
            Arc::clone(&rt),
            clouds,
            &config.device,
            &config.passphrase,
            config.data.retry.clone(),
            config.lock.clone(),
            rng,
            config.data.obs.clone(),
            config.delta_ratio,
            config.delta_floor,
        );
        UniDriveClient {
            rt,
            folder,
            plane,
            meta,
            config,
            original: SyncFolderImage::new(),
            shadow: BTreeMap::new(),
            counter: 0,
            pending_blocks: std::sync::Arc::new(unidrive_util::sync::Mutex::new(Vec::new())),
        }
    }

    /// The image as of the last successful sync.
    pub fn image(&self) -> &SyncFolderImage {
        &self.original
    }

    /// The device name.
    pub fn device(&self) -> &str {
        &self.config.device
    }

    /// The data plane (benchmarks use it directly).
    pub fn data_plane(&self) -> &DataPlane {
        &self.plane
    }

    /// Paths with unresolved conflicts in the current image.
    pub fn conflicts(&self) -> Vec<String> {
        self.original
            .files()
            .filter(|(_, e)| e.conflict.is_some())
            .map(|(p, _)| p.to_owned())
            .collect()
    }

    /// Fetches the retained conflict copy of `path` (the losing version
    /// of a concurrent edit) so the user can inspect or restore it.
    ///
    /// # Errors
    ///
    /// [`DownloadError`] if the copy's blocks are unreachable.
    pub fn fetch_conflict_copy(&self, path: &str) -> Result<Option<Vec<u8>>, DownloadError> {
        let Some(entry) = self.original.file(path) else {
            return Ok(None);
        };
        let Some((_, snapshot)) = &entry.conflict else {
            return Ok(None);
        };
        let fetches: Vec<crate::SegmentFetch> = snapshot
            .segments
            .iter()
            .map(|id| {
                let pool = self.original.segment(id).expect("conflict segments pooled");
                crate::SegmentFetch {
                    id: *id,
                    len: pool.len,
                    blocks: pool.blocks.clone(),
                }
            })
            .collect();
        let order: Vec<SegmentId> = fetches.iter().map(|f| f.id).collect();
        let mut report = self.plane.download_segments(fetches);
        if let Some(e) = report.failed.pop() {
            return Err(e);
        }
        let mut out = Vec::new();
        for id in order {
            out.extend_from_slice(&report.segments[&id]);
        }
        Ok(Some(out))
    }

    /// Resolves the conflict on `path`: `keep_current` keeps the
    /// snapshot that won the merge; otherwise the retained conflict copy
    /// is restored as the file's content (locally and, at the next sync
    /// pass, in the cloud metadata). Returns whether a conflict existed.
    ///
    /// # Errors
    ///
    /// [`SyncError::Download`] if the conflict copy's blocks are
    /// unreachable, [`SyncError::Folder`] on local write failures.
    pub fn resolve_conflict(&mut self, path: &str, keep_current: bool) -> Result<bool, SyncError> {
        let Some(entry) = self.original.file(path) else {
            return Ok(false);
        };
        if entry.conflict.is_none() {
            return Ok(false);
        }
        if !keep_current {
            let data = self
                .fetch_conflict_copy(path)
                .map_err(SyncError::Download)?
                .expect("conflict checked above");
            let mtime = self.rt.now().as_nanos();
            self.folder
                .write(path, &data, mtime)
                .map_err(SyncError::Folder)?;
            // Leave the shadow stale so the next sync pass detects the
            // restored content as a local change and commits it.
            self.shadow.remove(path);
        }
        let garbage = self.original.resolve_conflict(path);
        self.original.collect_garbage();
        let _ = garbage; // remote copies die with the next commit's GC
        Ok(true)
    }

    /// One pass of Algorithm 1. Returns what changed.
    ///
    /// # Errors
    ///
    /// [`SyncError`] on lock, metadata, download or folder failures; the
    /// client state is unchanged on error and the pass can be retried.
    pub fn sync_once(&mut self) -> Result<SyncReport, SyncError> {
        let t0 = self.rt.now();
        // Root of the causal chain: everything this pass does — lock
        // rounds, metadata reads/merges/commits, transfer batches and
        // their per-block spans — parents (transitively) to this span.
        let mut rspan = self.config.data.obs.span("sync.round", None);
        rspan.attr_str("device", self.config.device.as_str());
        let round = rspan.id();
        let result = self.sync_pass(round);
        let elapsed_ns = self.rt.now().saturating_duration_since(t0).as_nanos() as u64;
        let outcome = match &result {
            Ok(r) if !r.uploaded.is_empty() || !r.deleted_remotely.is_empty() => "committed",
            Ok(r) if !r.downloaded.is_empty() || !r.deleted_locally.is_empty() => "fetched",
            Ok(_) => "clean",
            Err(_) => "error",
        };
        rspan.attr_str("outcome", outcome);
        rspan.end();
        let obs = &self.config.data.obs;
        obs.inc("client.sync_rounds");
        obs.inc(&format!("client.sync_rounds.{outcome}"));
        obs.observe("client.sync_round_ns", elapsed_ns);
        obs.series_add("client.sync_rounds", outcome, 1);
        obs.series_observe("client.sync_round_ns", self.config.device.as_str(), elapsed_ns);
        obs.event(|| Event::SyncRoundCompleted {
            device: self.config.device.clone(),
            outcome,
            elapsed_ns,
        });
        result
    }

    fn sync_pass(&mut self, round: Option<SpanId>) -> Result<SyncReport, SyncError> {
        let changes = self.scan_local_changes().map_err(SyncError::Folder)?;
        let has_pending_blocks = !self.pending_blocks.lock().is_empty();
        if !changes.is_empty() || has_pending_blocks {
            self.commit_local_update(changes, round)
        } else {
            self.check_cloud_update(round)
        }
    }

    /// Runs the client loop for `duration`, syncing every τ. Returns the
    /// merged reports of all passes.
    pub fn run_for(&mut self, duration: Duration) -> Vec<SyncReport> {
        let deadline = self.rt.now() + duration;
        let mut reports = Vec::new();
        loop {
            if let Ok(report) = self.sync_once() {
                if !report.is_noop() {
                    reports.push(report);
                }
            }
            if self.rt.now() + self.config.poll_interval >= deadline {
                break;
            }
            self.rt.sleep(self.config.poll_interval);
        }
        reports
    }

    fn scan_local_changes(
        &self,
    ) -> Result<Vec<(LocalChange, Option<Bytes>)>, crate::folder::FolderError> {
        let current = self.folder.scan()?;
        let mut out = Vec::new();
        for (path, stat) in &current {
            let unchanged = self.shadow.get(path) == Some(stat);
            if !unchanged {
                let data = self.folder.read(path)?;
                out.push((
                    LocalChange::Changed {
                        path: path.clone(),
                        stat: *stat,
                    },
                    Some(data),
                ));
            }
        }
        for path in self.shadow.keys() {
            if !current.contains_key(path) {
                out.push((
                    LocalChange::Deleted {
                        path: path.clone(),
                    },
                    None,
                ));
            }
        }
        Ok(out)
    }

    /// Commit path of Algorithm 1 (lines 2–14).
    fn commit_local_update(
        &mut self,
        changes: Vec<(LocalChange, Option<Bytes>)>,
        round: Option<SpanId>,
    ) -> Result<SyncReport, SyncError> {
        let mut report = SyncReport::default();

        // 1. Upload content data blocks first — no coordination needed,
        //    blocks are immutable (paper §5.2).
        let known: HashSet<SegmentId> = self
            .original
            .segments()
            .filter(|(_, e)| !e.blocks.is_empty())
            .map(|(id, _)| *id)
            .collect();
        let mut requests = Vec::new();
        let mut stats: BTreeMap<String, LocalStat> = BTreeMap::new();
        for (change, data) in &changes {
            if let (LocalChange::Changed { path, stat }, Some(data)) = (change, data) {
                requests.push(UploadRequest {
                    path: path.clone(),
                    data: data.clone(),
                });
                stats.insert(path.clone(), *stat);
            }
        }
        let (upload, segmentations) = self.plane.upload_files_opts(
            requests,
            &known,
            UploadOptions {
                detach_after_availability: true,
                sink: Some(std::sync::Arc::clone(&self.pending_blocks)),
                parent_span: round,
            },
        );

        // 2. Build the local image v_l with the files whose uploads
        //    completed; defer the rest to the next pass. Start by
        //    draining placements that background reliability workers
        //    reported since the last commit.
        let mut local = self.original.clone();
        let drained: Vec<(SegmentId, unidrive_meta::BlockRef)> =
            std::mem::take(&mut *self.pending_blocks.lock());
        let mut drained_new = false;
        for (id, block) in &drained {
            // Only record blocks for segments the metadata still tracks
            // (a deleted file's stragglers are cleaned by GC instead).
            if local.segment(id).is_some() {
                drained_new |= local.record_block(*id, *block);
            }
        }
        let mut committed_stats: BTreeMap<String, Option<LocalStat>> = BTreeMap::new();
        for (result, segmentation) in upload.files.iter().zip(&segmentations) {
            if result.available_at.is_none() {
                report.deferred.push(result.path.clone());
                continue;
            }
            for (id, len) in &segmentation.segments {
                local.ensure_segment(*id, *len);
            }
            for (id, block) in &upload.blocks {
                local.record_block(*id, *block);
            }
            let stat = stats[&segmentation.path];
            local.upsert_file(
                &segmentation.path,
                Snapshot {
                    mtime_ns: stat.mtime_ns,
                    size: segmentation.size,
                    segments: segmentation.segments.iter().map(|(id, _)| *id).collect(),
                },
            );
            report.uploaded.push(segmentation.path.clone());
            committed_stats.insert(segmentation.path.clone(), Some(stat));
        }
        for (change, _) in &changes {
            if let LocalChange::Deleted { path } = change {
                local.delete_file(path);
                report.deleted_remotely.push(path.clone());
                committed_stats.insert(path.clone(), None);
            }
        }
        if report.uploaded.is_empty() && report.deleted_remotely.is_empty() && !drained_new {
            // Nothing became committable (e.g. total upload failure).
            return Ok(report);
        }

        // 3. Transact through the metadata plane (lines 4–14): the
        //    plane coordinates (quorum lock, or lock-free op append),
        //    reads the freshest remote image, and runs the merge +
        //    stamp below *inside* the transaction.
        let obs = self.config.data.obs.clone();
        let device = self.config.device.clone();
        let rt = Arc::clone(&self.rt);
        let ancestor = self.original.clone();
        let mut counter = self.counter;
        let mut garbage: Vec<(SegmentId, unidrive_meta::SegmentEntry)> = Vec::new();
        let mut had_cloud_update = false;
        let transacted = self.meta.transact(&ancestor, round, &mut |remote| {
            let mut merge_span = obs.span("meta.merge", round);
            merge_span.attr_str("device", device.as_str());
            let (merged, cloud_update) = match remote {
                // The merge triggers on image inequality (not stamp
                // inequality): under the lock the two are equivalent,
                // while oplog folds can differ in content at equal head
                // stamps.
                Some(image) if *image != ancestor => {
                    let out = merge3(&ancestor, &local, image, &device);
                    report
                        .conflicts
                        .extend(out.conflicts.iter().map(|c| c.path.clone()));
                    (out.image, true)
                }
                _ => (local.clone(), false),
            };
            merge_span.attr_bool("cloud_update", cloud_update);
            merge_span.attr_u64("conflicts", report.conflicts.len() as u64);
            merge_span.end();
            had_cloud_update = cloud_update;
            let mut to_commit = merged;
            garbage = to_commit.collect_garbage();
            counter = counter
                .max(remote.map(|r| r.version.counter).unwrap_or(0))
                .max(ancestor.version.counter)
                + 1;
            let stamp = VersionStamp {
                device: device.clone(),
                counter,
                timestamp_ns: rt.now().as_nanos(),
            };
            to_commit.version = stamp.clone();
            Some((to_commit, stamp))
        });
        // The counter survives a failed commit: the stamp (and, in
        // oplog mode, the op seq) may have reached a minority of clouds
        // and must not be reused.
        self.counter = counter;
        let Some(committed) = transacted.map_err(SyncError::from)? else {
            return Ok(report);
        };

        // 4. Settle local state: adopt the committed image, apply any
        //    merged-in cloud changes to the folder, GC dead blocks. The
        //    diff baseline is `local` (what the folder holds now), so
        //    only the cloud side's contributions are materialized.
        for (path, stat) in committed_stats {
            match stat {
                Some(s) => {
                    self.shadow.insert(path, s);
                }
                None => {
                    self.shadow.remove(&path);
                }
            }
        }
        if had_cloud_update {
            self.materialize_cloud_changes(&local, &committed, &mut report, round)?;
        }
        self.original = committed;
        self.plane.delete_blocks(&garbage);
        Ok(report)
    }

    /// Poll path of Algorithm 1 (lines 15–18).
    fn check_cloud_update(&mut self, round: Option<SpanId>) -> Result<SyncReport, SyncError> {
        let mut report = SyncReport::default();
        let Some(committed) = self
            .meta
            .poll(&self.original, round)
            .map_err(SyncError::from)?
        else {
            return Ok(report);
        };
        let previous = self.original.clone();
        self.materialize_cloud_changes(&previous, &committed, &mut report, round)?;
        self.original = committed;
        Ok(report)
    }

    /// Writes files changed between `from` and `to` into the local
    /// folder and deletes removed ones.
    fn materialize_cloud_changes(
        &mut self,
        from: &SyncFolderImage,
        to: &SyncFolderImage,
        report: &mut SyncReport,
        round: Option<SpanId>,
    ) -> Result<(), SyncError> {
        let delta = unidrive_meta::diff(from, to);
        // Gather every changed file's segments into ONE download batch:
        // the scheduler then spreads all files across all connections
        // ("when k blocks are downloaded, all networking resources are
        // assigned to the next file", paper §6.2).
        let mut to_write: Vec<(&str, &unidrive_meta::Snapshot)> = Vec::new();
        let mut fetches: Vec<crate::SegmentFetch> = Vec::new();
        let mut wanted: std::collections::HashSet<SegmentId> = std::collections::HashSet::new();
        for (path, change) in delta.iter() {
            match change {
                unidrive_meta::EntryChange::Upsert(_) => {
                    let entry = to.file(path).expect("diff reported an existing path");
                    for id in &entry.snapshot.segments {
                        if wanted.insert(*id) {
                            let pool = to.segment(id).expect("snapshot segments are pooled");
                            fetches.push(crate::SegmentFetch {
                                id: *id,
                                len: pool.len,
                                blocks: pool.blocks.clone(),
                            });
                        }
                    }
                    to_write.push((path, &entry.snapshot));
                }
                unidrive_meta::EntryChange::Delete => {
                    self.folder.remove(path).map_err(SyncError::Folder)?;
                    self.shadow.remove(path);
                    report.deleted_locally.push(path.to_owned());
                }
            }
        }
        if !to_write.is_empty() {
            let mut dl = self.plane.download_segments_in(fetches, round);
            if let Some(err) = dl.failed.pop() {
                return Err(SyncError::Download(err));
            }
            for (path, snapshot) in to_write {
                let mut data = Vec::with_capacity(snapshot.size as usize);
                for id in &snapshot.segments {
                    data.extend_from_slice(
                        dl.segments.get(id).expect("complete batch has every segment"),
                    );
                }
                let mtime = self.rt.now().as_nanos();
                self.folder
                    .write(path, &data, mtime)
                    .map_err(SyncError::Folder)?;
                self.shadow.insert(
                    path.to_owned(),
                    LocalStat {
                        size: data.len() as u64,
                        mtime_ns: mtime,
                    },
                );
                report.downloaded.push(path.to_owned());
            }
            // Disk-backed folders stamp their own mtimes; one scan after
            // the batch reconciles the shadow (a per-file scan here would
            // be O(n²) on large batches).
            if let Ok(scan) = self.folder.scan() {
                for path in &report.downloaded {
                    if let Some(stat) = scan.get(path.as_str()) {
                        self.shadow.insert(path.clone(), *stat);
                    }
                }
            }
        }
        for (path, entry) in to.files() {
            if entry.conflict.is_some() && !report.conflicts.iter().any(|p| p == path) {
                report.conflicts.push(path.to_owned());
            }
        }
        Ok(())
    }
}
