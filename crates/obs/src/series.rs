//! Fixed-interval windowed time-series rollups.
//!
//! The end-of-run [`Snapshot`](crate::Snapshot) answers *how much*;
//! this module answers *when*. Every sample is bucketed into a window
//! of fixed virtual-time width (`t_ns / window_ns`), keyed by
//! `(metric, label)` — the label is a cloud id, shard, device class,
//! meta mode, whatever dimension the metric varies over — and each
//! window keeps either a plain counter delta or a full log₂ histogram
//! of the samples that landed in it. Diurnal rate flux, chaos windows,
//! lock-contention ramps and compaction storms that a whole-run
//! snapshot averages away show up here as per-window rows.
//!
//! Three layers share one representation:
//!
//! * [`TimeSeries`] — one `(metric, label)` series. Plain `&mut`
//!   recording, no locks; the open window is a fixed bucket array so
//!   the hot path never allocates (a new allocation happens only when
//!   a window *closes*, amortized to once per window).
//! * [`SeriesBank`] — a keyed collection of series with commutative
//!   [`merge_from`](SeriesBank::merge_from): per-shard banks merged in
//!   any order produce identical contents, which is what keeps fleet
//!   exports byte-identical across shard and thread counts.
//! * Registry-backed cells (see [`Obs::series_observe`]
//!   [`Obs::series_add`], [`Obs::series_handle`](crate::Obs::series_handle))
//!   — thread-safe recording stamped through the installed clock, for
//!   the real client stack.
//!
//! Export is deterministic: sorted keys, windows ascending, integers
//! only. Same seed ⇒ byte-identical `--series-out` files.
//!
//! [`Obs::series_observe`]: crate::Obs::series_observe
//! [`Obs::series_add`]: crate::Obs::series_add

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// Default rollup interval: 10 virtual seconds.
pub const DEFAULT_SERIES_WINDOW_NS: u64 = 10_000_000_000;

/// What a series' windows carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-window increment deltas (exported as `[index, delta]`).
    Counter,
    /// Per-window sample distributions (exported as histogram rows).
    Sample,
}

impl SeriesKind {
    /// Stable lowercase label used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Sample => "sample",
        }
    }
}

/// One closed window: its index (`t_ns / window_ns`) and the rolled-up
/// stats of every sample that landed in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStat {
    /// Window index; the window spans
    /// `[index * window_ns, (index + 1) * window_ns)`.
    pub index: u64,
    /// Rolled-up samples. For counter series only `count` (number of
    /// adds) and `sum` (the delta) are meaningful.
    pub stat: HistogramSnapshot,
}

/// The open (current) window: fixed-size bucket array, so recording is
/// allocation-free.
#[derive(Debug, Clone)]
struct OpenWindow {
    index: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl OpenWindow {
    fn new(index: u64) -> Box<OpenWindow> {
        Box::new(OpenWindow {
            index,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        })
    }

    #[inline]
    fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn close(&self) -> WindowStat {
        WindowStat {
            index: self.index,
            stat: HistogramSnapshot {
                count: self.count,
                sum: self.sum,
                min: if self.count == 0 { 0 } else { self.min },
                max: self.max,
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &n)| {
                        (n > 0).then_some((Histogram::bucket_lower_bound(i), n))
                    })
                    .collect(),
            },
        }
    }
}

/// One `(metric, label)` windowed series.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    kind: SeriesKind,
    window_ns: u64,
    /// Closed windows, ascending by index.
    closed: Vec<WindowStat>,
    open: Option<Box<OpenWindow>>,
}

impl TimeSeries {
    /// An empty series rolled up at `window_ns` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is 0.
    pub fn new(kind: SeriesKind, window_ns: u64) -> TimeSeries {
        assert!(window_ns > 0, "window must be positive");
        TimeSeries {
            kind,
            window_ns,
            closed: Vec::new(),
            open: None,
        }
    }

    /// The series kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// The rollup interval, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records `value` at virtual time `t_ns`. Samples within the
    /// current window are allocation-free; a sample in a *later*
    /// window closes the current one first. Late samples (an earlier
    /// window than the open one — merge phases may replay slightly out
    /// of order) fold into the already-closed window for their index,
    /// so the rollup is independent of arrival order.
    pub fn record(&mut self, t_ns: u64, value: u64) {
        let index = t_ns / self.window_ns;
        match &mut self.open {
            Some(w) if w.index == index => {
                w.record(value);
                return;
            }
            Some(w) if w.index > index => {
                // Late sample: fold into the closed window at `index`.
                let one = HistogramSnapshot {
                    count: 1,
                    sum: value,
                    min: value,
                    max: value,
                    buckets: vec![(
                        Histogram::bucket_lower_bound(Histogram::bucket_index(value)),
                        1,
                    )],
                };
                self.insert_closed(WindowStat { index, stat: one });
                return;
            }
            _ => {}
        }
        // Roll forward: close the open window (if any), open `index`.
        if let Some(w) = self.open.take() {
            self.insert_closed(w.close());
        }
        let mut w = OpenWindow::new(index);
        w.record(value);
        self.open = Some(w);
    }

    /// Folds `w` into `closed`, preserving ascending index order.
    fn insert_closed(&mut self, w: WindowStat) {
        match self.closed.binary_search_by_key(&w.index, |c| c.index) {
            Ok(i) => self.closed[i].stat.merge_from(&w.stat),
            Err(i) => self.closed.insert(i, w),
        }
    }

    /// Every window (closed plus the still-open one), ascending by
    /// index. Empty windows are absent — the export is sparse.
    pub fn windows(&self) -> Vec<WindowStat> {
        let mut out = self.closed.clone();
        if let Some(w) = &self.open {
            let closed = w.close();
            match out.binary_search_by_key(&closed.index, |w| w.index) {
                Ok(i) => out[i].stat.merge_from(&closed.stat),
                Err(i) => out.insert(i, closed),
            }
        }
        out
    }

    /// Total recorded across all windows (`sum` for counters).
    pub fn total(&self) -> u64 {
        self.windows().iter().map(|w| w.stat.sum).sum()
    }

    /// Merges `other`'s windows into this series, window by window.
    /// Merging is commutative and associative (counts and sums add,
    /// extrema combine, buckets union), so per-shard series merged in
    /// any order produce identical contents.
    pub fn merge_from(&mut self, other: &TimeSeries) {
        for w in other.windows() {
            // An open window at the same index would shadow a closed
            // twin in `windows()`; close and fold it first so the
            // incoming stat lands in one place.
            if let Some(open) = &self.open {
                if open.index == w.index {
                    let folded = open.close();
                    self.open = None;
                    self.insert_closed(folded);
                }
            }
            self.insert_closed(w);
        }
    }
}

/// A keyed collection of [`TimeSeries`], all sharing one window width.
/// This is the single-threaded building block: the fleet keeps one
/// bank per shard and merges them at window boundaries.
#[derive(Debug, Clone)]
pub struct SeriesBank {
    window_ns: u64,
    series: BTreeMap<(String, String), TimeSeries>,
}

impl SeriesBank {
    /// An empty bank rolling up at `window_ns`.
    pub fn new(window_ns: u64) -> SeriesBank {
        SeriesBank {
            window_ns: window_ns.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The rollup interval, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// True when no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn entry(&mut self, metric: &str, label: &str, kind: SeriesKind) -> &mut TimeSeries {
        let window_ns = self.window_ns;
        self.series
            .entry((metric.to_owned(), label.to_owned()))
            .or_insert_with(|| TimeSeries::new(kind, window_ns))
    }

    /// Adds `n` to the counter series `(metric, label)` at `t_ns`.
    pub fn add(&mut self, metric: &str, label: &str, t_ns: u64, n: u64) {
        self.entry(metric, label, SeriesKind::Counter).record(t_ns, n);
    }

    /// Records sample `value` into the sample series `(metric, label)`
    /// at `t_ns`.
    pub fn observe(&mut self, metric: &str, label: &str, t_ns: u64, value: u64) {
        self.entry(metric, label, SeriesKind::Sample).record(t_ns, value);
    }

    /// The series for `(metric, label)`, if any samples were recorded.
    pub fn series(&self, metric: &str, label: &str) -> Option<&TimeSeries> {
        self.series.get(&(metric.to_owned(), label.to_owned()))
    }

    /// Merges every series of `other` into this bank. Commutative:
    /// per-shard banks can be merged in any order.
    pub fn merge_from(&mut self, other: &SeriesBank) {
        debug_assert_eq!(self.window_ns, other.window_ns, "mixed window widths");
        for ((metric, label), s) in &other.series {
            self.series
                .entry((metric.clone(), label.clone()))
                .or_insert_with(|| TimeSeries::new(s.kind(), s.window_ns()))
                .merge_from(s);
        }
    }

    /// Immutable snapshot of every series, sorted by `(metric, label)`.
    pub fn snapshot(&self) -> SeriesSnapshot {
        SeriesSnapshot {
            window_ns: self.window_ns,
            entries: self
                .series
                .iter()
                .map(|((metric, label), s)| SeriesEntry {
                    metric: metric.clone(),
                    label: label.clone(),
                    kind: s.kind(),
                    windows: s.windows(),
                })
                .collect(),
        }
    }
}

/// Thread-safe cell for one `(metric, label)` series, shared through
/// the registry. Hot-path recording takes one uncontended mutex and
/// never allocates while the window stays open.
#[derive(Debug)]
pub struct SeriesCell {
    state: Mutex<TimeSeries>,
}

impl SeriesCell {
    pub(crate) fn new(kind: SeriesKind, window_ns: u64) -> SeriesCell {
        SeriesCell {
            state: Mutex::new(TimeSeries::new(kind, window_ns)),
        }
    }

    /// Records `value` at `t_ns`.
    #[inline]
    pub fn record(&self, t_ns: u64, value: u64) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(t_ns, value);
    }

    pub(crate) fn view(&self) -> (SeriesKind, Vec<WindowStat>) {
        let s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (s.kind(), s.windows())
    }
}

/// Pre-resolved series handle for hot loops: no map lookup per record,
/// no-op when series collection is disabled.
#[derive(Clone, Default)]
pub struct SeriesHandle {
    pub(crate) inner: Option<(Arc<crate::Registry>, Arc<SeriesCell>)>,
}

impl std::fmt::Debug for SeriesHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl SeriesHandle {
    /// Records `value` stamped with the registry clock. No-op when
    /// disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some((registry, cell)) = &self.inner {
            cell.record(registry.now_ns(), value);
        }
    }
}

/// One exported series: its key, kind, and sparse windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesEntry {
    /// Metric name (e.g. `cloud.op_ns`).
    pub metric: String,
    /// Label value (e.g. the cloud id).
    pub label: String,
    /// Counter or sample.
    pub kind: SeriesKind,
    /// Sparse windows, ascending by index.
    pub windows: Vec<WindowStat>,
}

/// Point-in-time copy of every windowed series, ready for JSON export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Rollup interval, nanoseconds.
    pub window_ns: u64,
    /// Series sorted by `(metric, label)`.
    pub entries: Vec<SeriesEntry>,
}

impl SeriesSnapshot {
    /// An empty snapshot (window width echoed for schema stability).
    pub fn empty(window_ns: u64) -> SeriesSnapshot {
        SeriesSnapshot {
            window_ns,
            entries: Vec::new(),
        }
    }

    /// The entry for `(metric, label)`, if present.
    pub fn entry(&self, metric: &str, label: &str) -> Option<&SeriesEntry> {
        self.entries
            .iter()
            .find(|e| e.metric == metric && e.label == label)
    }

    /// Serializes as deterministic JSON (schema
    /// `unidrive-obs-series/v1`): sorted keys, windows ascending,
    /// integers only. See [`to_json_with_health`]
    /// (SeriesSnapshot::to_json_with_health) to append a health
    /// scoreboard.
    pub fn to_json(&self) -> String {
        self.to_json_with_health(&[])
    }

    /// Like [`to_json`](SeriesSnapshot::to_json), with `health` —
    /// pre-rendered JSON objects (one per cloud, already deterministic)
    /// — appended under the `"health"` key. The series layer does not
    /// know what a health report contains; it only guarantees the
    /// combined document stays schema-stable.
    pub fn to_json_with_health(&self, health: &[String]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"series\": \"unidrive-obs-series/v1\",\n");
        out.push_str(&format!("  \"window_ns\": {},\n", self.window_ns));
        out.push_str("  \"metrics\": {");
        let mut first_metric = true;
        let mut i = 0;
        while i < self.entries.len() {
            let metric = &self.entries[i].metric;
            if !first_metric {
                out.push(',');
            }
            first_metric = false;
            out.push_str(&format!("\n    \"{metric}\": {{"));
            let mut first_label = true;
            while i < self.entries.len() && &self.entries[i].metric == metric {
                let e = &self.entries[i];
                if !first_label {
                    out.push(',');
                }
                first_label = false;
                out.push_str(&format!(
                    "\n      \"{}\": {{\"kind\": \"{}\", \"windows\": [",
                    e.label,
                    e.kind.as_str()
                ));
                for (j, w) in e.windows.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    match e.kind {
                        SeriesKind::Counter => {
                            out.push_str(&format!("[{}, {}]", w.index, w.stat.sum));
                        }
                        SeriesKind::Sample => {
                            out.push_str(&format!(
                                "{{\"i\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \
                                 \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                                w.index,
                                w.stat.count,
                                w.stat.sum,
                                w.stat.min,
                                w.stat.max,
                                w.stat.p50(),
                                w.stat.p95(),
                                w.stat.p99()
                            ));
                        }
                    }
                }
                out.push_str("]}");
                i += 1;
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  },\n  \"health\": [");
        for (j, h) in health.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(h.trim());
        }
        if health.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000; // 1 µs windows keep test numbers small

    #[test]
    fn windows_roll_at_fixed_intervals() {
        let mut s = TimeSeries::new(SeriesKind::Sample, W);
        s.record(0, 10);
        s.record(999, 20); // same window
        s.record(1_000, 30); // boundary sample opens window 1
        s.record(5_500, 40); // skips empty windows 2..4
        let w = s.windows();
        assert_eq!(w.len(), 3, "empty windows are absent: {w:?}");
        assert_eq!((w[0].index, w[0].stat.count, w[0].stat.sum), (0, 2, 30));
        assert_eq!((w[1].index, w[1].stat.count, w[1].stat.sum), (1, 1, 30));
        assert_eq!((w[2].index, w[2].stat.count, w[2].stat.sum), (5, 1, 40));
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn boundary_sample_lands_in_the_new_window() {
        let mut s = TimeSeries::new(SeriesKind::Counter, W);
        s.record(W - 1, 1);
        s.record(W, 1); // exactly on the boundary → window 1
        let w = s.windows();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].index, w[0].stat.sum), (0, 1));
        assert_eq!((w[1].index, w[1].stat.sum), (1, 1));
    }

    #[test]
    fn late_samples_fold_into_their_window() {
        let mut s = TimeSeries::new(SeriesKind::Sample, W);
        s.record(100, 5);
        s.record(2_100, 7); // window 2 open
        s.record(150, 9); // late: folds back into window 0
        s.record(1_100, 11); // late: creates closed window 1
        let w = s.windows();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].index, w[0].stat.count, w[0].stat.sum), (0, 2, 14));
        assert_eq!((w[1].index, w[1].stat.count, w[1].stat.sum), (1, 1, 11));
        assert_eq!((w[2].index, w[2].stat.count, w[2].stat.sum), (2, 1, 7));
        // Ordering invariants hold after out-of-order recording.
        assert!(w.windows(2).all(|p| p[0].index < p[1].index));
    }

    #[test]
    fn merge_is_commutative_across_banks() {
        let fill = |bank: &mut SeriesBank, offset: u64| {
            bank.add("ops", "c0", offset, 2);
            bank.observe("lat", "c0", offset, 100 + offset);
            bank.observe("lat", "c1", offset + 3 * W, 50);
        };
        let mut a = SeriesBank::new(W);
        let mut b = SeriesBank::new(W);
        fill(&mut a, 10);
        fill(&mut b, 2_010);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot().to_json(), ba.snapshot().to_json());

        // Merging an open window with a closed twin folds, not shadows.
        let lat = ab.series("lat", "c0").unwrap();
        assert_eq!(lat.windows().len(), 2);
    }

    #[test]
    fn merge_folds_same_index_windows() {
        let mut a = TimeSeries::new(SeriesKind::Sample, W);
        let mut b = TimeSeries::new(SeriesKind::Sample, W);
        a.record(10, 100);
        b.record(20, 300);
        b.record(1_020, 7);
        a.merge_from(&b);
        let w = a.windows();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].stat.count, w[0].stat.min, w[0].stat.max), (2, 100, 300));
        assert_eq!(w[1].stat.sum, 7);
        // The open window keeps accepting samples after a merge.
        a.record(30, 200);
        assert_eq!(a.windows()[0].stat.count, 3);
    }

    #[test]
    fn json_export_is_deterministic_and_grouped() {
        let mut bank = SeriesBank::new(W);
        bank.add("ops", "c1", 0, 3);
        bank.add("ops", "c0", 0, 1);
        bank.observe("lat", "c0", 500, 42);
        let a = bank.snapshot().to_json();
        assert_eq!(a, bank.snapshot().to_json());
        assert!(a.contains("\"series\": \"unidrive-obs-series/v1\""));
        assert!(a.contains("\"window_ns\": 1000"));
        // Labels sort within a metric; kinds export differently.
        let c0 = a.find("\"c0\": {\"kind\": \"counter\"").unwrap();
        let c1 = a.find("\"c1\": {\"kind\": \"counter\"").unwrap();
        assert!(c0 < c1);
        assert!(a.contains("[0, 1]"));
        assert!(a.contains("\"kind\": \"sample\""));
        assert!(a.contains("\"p50\": 42"));
        assert!(a.contains("\"health\": []"));

        let with_health = bank
            .snapshot()
            .to_json_with_health(&["{\"cloud\": \"c0\"}".to_owned()]);
        assert!(with_health.contains("\"health\": [\n    {\"cloud\": \"c0\"}\n  ]"));
    }

    #[test]
    fn empty_snapshot_keeps_schema() {
        let json = SeriesSnapshot::empty(W).to_json();
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"health\": []"));
    }

    #[test]
    fn sample_windows_keep_quantile_order_with_one_sample() {
        let mut s = TimeSeries::new(SeriesKind::Sample, W);
        for (i, v) in [3u64, 70_000, 9, 1].into_iter().enumerate() {
            s.record(i as u64 * W, v);
        }
        for w in s.windows() {
            assert_eq!(w.stat.count, 1);
            assert_eq!(w.stat.p50(), w.stat.min);
            assert!(w.stat.p50() <= w.stat.p95() && w.stat.p95() <= w.stat.p99());
            assert_eq!(w.stat.p99(), w.stat.max);
        }
    }
}
