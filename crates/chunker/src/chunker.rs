//! Content-based file segmentation (paper §6.1).
//!
//! A file is divided at positions where the Rabin fingerprint of the
//! trailing window matches a magic value — so boundaries depend only on
//! *content*, not offsets, and a local edit disturbs at most the
//! segments it touches. The paper constrains final segment sizes to
//! `(0.5 θ, 1.5 θ)`; we realize exactly that constraint by suppressing
//! cut points before `0.5 θ` and forcing one at `1.5 θ` (equivalent to
//! the paper's merge-small/split-large post-pass, but single-scan).
//!
//! Each segment is identified by the SHA-1 of its content, giving
//! cross-file deduplication for free.

use unidrive_crypto::{Digest, Sha1};

use crate::rabin::RabinHash;

/// Parameters of the content-defined chunker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Target (average) segment size θ in bytes.
    pub theta: usize,
    /// Rolling-hash window in bytes.
    pub window: usize,
}

impl ChunkerConfig {
    /// Creates a config with the given θ and the LBFS-style 48-byte
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `theta < 64`.
    pub fn new(theta: usize) -> Self {
        assert!(theta >= 64, "theta too small to chunk meaningfully");
        ChunkerConfig { theta, window: 48 }
    }

    /// The paper's default θ = 4 MB.
    pub fn paper_default() -> Self {
        ChunkerConfig::new(4 * 1024 * 1024)
    }

    /// Minimum segment size `0.5 θ`.
    pub fn min_size(&self) -> usize {
        self.theta / 2
    }

    /// Maximum segment size `1.5 θ`.
    pub fn max_size(&self) -> usize {
        self.theta + self.theta / 2
    }

    /// Cut-point mask: expected gap between eligible cut points is
    /// `0.5 θ`, so the mean size lands near θ inside `[0.5 θ, 1.5 θ)`.
    fn mask(&self) -> u64 {
        let bits = (self.theta / 2).next_power_of_two().trailing_zeros();
        (1u64 << bits) - 1
    }
}

/// One content-defined segment of a file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Byte offset within the file.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
    /// SHA-1 of the segment content (its identity in the segment pool).
    pub digest: Digest,
}

impl Segment {
    /// The half-open byte range of this segment.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Splits `data` into content-defined segments.
///
/// Every byte belongs to exactly one segment; all segments except
/// possibly the last are within `[0.5 θ, 1.5 θ)`; boundaries are stable
/// under local edits.
///
/// # Examples
///
/// ```
/// use unidrive_chunker::{segment_bytes, ChunkerConfig};
///
/// let data = vec![7u8; 100_000];
/// let segs = segment_bytes(&data, &ChunkerConfig::new(16 * 1024));
/// let total: usize = segs.iter().map(|s| s.len).sum();
/// assert_eq!(total, data.len());
/// ```
pub fn segment_bytes(data: &[u8], config: &ChunkerConfig) -> Vec<Segment> {
    let mut segments = Vec::new();
    for (offset, len) in cut_points(data, config) {
        segments.push(Segment {
            offset,
            len,
            digest: Sha1::digest(&data[offset..offset + len]),
        });
    }
    segments
}

/// Computes `(offset, len)` pairs of the content-defined segmentation
/// without hashing the contents (the cheap half of [`segment_bytes`]).
pub fn cut_points(data: &[u8], config: &ChunkerConfig) -> Vec<(usize, usize)> {
    if data.is_empty() {
        return Vec::new();
    }
    let mask = config.mask();
    let min = config.min_size().max(config.window);
    let max = config.max_size();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut hash = RabinHash::new(config.window);
    while data.len() - start > max {
        // Find the next cut in (start+min, start+max].
        let mut cut = start + max;
        // Prime the window over the last `window` bytes before the first
        // eligible position.
        hash.reset();
        let prime_from = start + min - config.window;
        for &b in &data[prime_from..start + min] {
            hash.push(b);
        }
        for pos in start + min..start + max {
            if hash.fingerprint() & mask == mask {
                cut = pos;
                break;
            }
            hash.roll(data[pos - config.window], data[pos]);
        }
        out.push((start, cut - start));
        start = cut;
    }
    out.push((start, data.len() - start));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::new(8 * 1024)
    }

    #[test]
    fn segments_cover_input_exactly() {
        let data = pseudo_random(200_000, 1);
        let segs = segment_bytes(&data, &cfg());
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.offset, pos);
            pos += s.len;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn sizes_respect_paper_bounds() {
        let config = cfg();
        let data = pseudo_random(500_000, 2);
        let segs = segment_bytes(&data, &config);
        assert!(segs.len() > 10, "expected many segments, got {}", segs.len());
        for (i, s) in segs.iter().enumerate() {
            if i + 1 < segs.len() {
                assert!(
                    s.len >= config.min_size() && s.len < config.max_size() + 1,
                    "segment {i} size {} out of bounds",
                    s.len
                );
            } else {
                assert!(s.len <= config.max_size());
            }
        }
    }

    #[test]
    fn mean_size_is_near_theta() {
        let config = cfg();
        let data = pseudo_random(2_000_000, 3);
        let segs = segment_bytes(&data, &config);
        let mean = data.len() as f64 / segs.len() as f64;
        let theta = config.theta as f64;
        assert!(
            (0.6 * theta..1.4 * theta).contains(&mean),
            "mean {mean} vs theta {theta}"
        );
    }

    #[test]
    fn local_edit_disturbs_few_segments() {
        // The property that minimizes sync traffic: flipping one byte in
        // the middle changes only the digests of segments near the edit.
        let config = cfg();
        let mut data = pseudo_random(400_000, 4);
        let before = segment_bytes(&data, &config);
        data[200_000] ^= 0xFF;
        let after = segment_bytes(&data, &config);
        let before_set: std::collections::HashSet<_> =
            before.iter().map(|s| s.digest).collect();
        let changed = after
            .iter()
            .filter(|s| !before_set.contains(&s.digest))
            .count();
        assert!(
            changed <= 3,
            "a one-byte edit changed {changed} of {} segments",
            after.len()
        );
    }

    #[test]
    fn prepend_shifts_but_preserves_most_segments() {
        // Offset-based (fixed-size) chunking would invalidate everything.
        let config = cfg();
        let data = pseudo_random(400_000, 5);
        let before = segment_bytes(&data, &config);
        let mut shifted = pseudo_random(1000, 6);
        shifted.extend_from_slice(&data);
        let after = segment_bytes(&shifted, &config);
        let before_set: std::collections::HashSet<_> =
            before.iter().map(|s| s.digest).collect();
        let reused = after
            .iter()
            .filter(|s| before_set.contains(&s.digest))
            .count();
        assert!(
            reused * 2 > after.len(),
            "only {reused} of {} segments reused after prepend",
            after.len()
        );
    }

    #[test]
    fn identical_content_same_digests() {
        let data = pseudo_random(100_000, 7);
        let a = segment_bytes(&data, &cfg());
        let b = segment_bytes(&data, &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn small_files_are_one_segment() {
        let config = cfg();
        for len in [1usize, 100, config.min_size(), config.max_size()] {
            let data = pseudo_random(len, 8);
            let segs = segment_bytes(&data, &config);
            assert_eq!(segs.len(), 1, "len {len}");
            assert_eq!(segs[0].len, len);
        }
    }

    #[test]
    fn empty_input_has_no_segments() {
        assert!(segment_bytes(&[], &cfg()).is_empty());
    }

    #[test]
    fn constant_data_hits_max_size_segments() {
        // All-zero data never matches the magic mask, so cuts are forced
        // at max_size: the degenerate-content worst case terminates.
        let config = cfg();
        let data = vec![0u8; 100_000];
        let segs = segment_bytes(&data, &config);
        for (i, s) in segs.iter().enumerate() {
            if i + 1 < segs.len() {
                assert_eq!(s.len, config.max_size());
            }
        }
        // And all full-size segments dedup to one digest.
        let distinct: std::collections::HashSet<_> =
            segs[..segs.len() - 1].iter().map(|s| s.digest).collect();
        assert_eq!(distinct.len(), 1);
    }
}
