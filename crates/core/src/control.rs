//! Metadata replication over the multi-cloud (paper §5.2).
//!
//! The DES-encrypted metadata — a **base** image, a log-structured
//! **delta**, and a tiny **version file** — is replicated to every
//! cloud. Writers hold the quorum lock and must land their update on a
//! majority of clouds for the commit to count; readers collect version
//! files from all clouds, pick the highest committed version, and fetch
//! the matching base + delta (falling back across clouds on corruption
//! or lag). Version stamps carry a commit counter, so "newest" needs no
//! global clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use unidrive_cloud::{CloudSet, Retry, RetryPolicy};
use unidrive_crypto::MetadataCipher;
use unidrive_meta::{DeltaLog, SyncFolderImage, VersionStamp, BASE_PATH, DELTA_PATH, VERSION_PATH};
use unidrive_sim::Runtime;

/// Error from metadata store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// Fewer clouds than a quorum acknowledged the write.
    QuorumWriteFailed {
        /// Clouds that stored the update.
        acked: usize,
        /// Quorum required.
        quorum: usize,
    },
    /// A version file exists somewhere but no cloud serves a matching,
    /// decryptable base + delta.
    Unreadable,
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::QuorumWriteFailed { acked, quorum } => {
                write!(f, "metadata write reached {acked} clouds, quorum is {quorum}")
            }
            MetaError::Unreadable => write!(f, "no cloud serves a consistent metadata copy"),
        }
    }
}

impl std::error::Error for MetaError {}

/// Metadata fetched from the multi-cloud.
#[derive(Debug, Clone)]
pub struct RemoteState {
    /// Base image with the delta already applied (the up-to-date image).
    pub image: SyncFolderImage,
    /// The delta log as stored (appended to by the next committer).
    pub delta: DeltaLog,
    /// Size of the encrypted base file (drives the λ compaction test).
    pub base_bytes: usize,
}

/// Replicated, encrypted metadata storage over a [`CloudSet`].
pub struct MetadataStore {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    cipher: MetadataCipher,
    retry: RetryPolicy,
    nonce: AtomicU64,
}

impl std::fmt::Debug for MetadataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetadataStore")
            .field("clouds", &self.clouds)
            .finish()
    }
}

/// Orders two stamps by commit counter (ties broken by device name so
/// the order is total).
pub fn newer(a: &VersionStamp, b: &VersionStamp) -> bool {
    (a.counter, &a.device) > (b.counter, &b.device)
}

impl MetadataStore {
    /// Creates a store over `clouds`, encrypting with a key derived from
    /// `passphrase`.
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        passphrase: &str,
        retry: RetryPolicy,
    ) -> Self {
        MetadataStore {
            rt,
            clouds,
            cipher: MetadataCipher::from_passphrase(passphrase),
            retry,
            nonce: AtomicU64::new(1),
        }
    }

    /// Reads the version files from every cloud and returns the highest
    /// committed stamp, or `None` on a fresh multi-cloud. This is the
    /// cheap poll UniDrive performs every τ.
    pub fn read_version(&self) -> Option<VersionStamp> {
        let tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = Arc::clone(cloud);
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                unidrive_sim::spawn(&self.rt, "meta-ver", move || {
                    Retry::new(&rt, &retry)
                        .run(|| cloud.download(VERSION_PATH))
                        .ok()
                })
            })
            .collect();
        let mut best: Option<VersionStamp> = None;
        for t in tasks {
            let Some(data) = t.join() else { continue };
            if let Ok(stamp) = VersionStamp::decode(&data) {
                if best.as_ref().is_none_or(|b| newer(&stamp, b)) {
                    best = Some(stamp);
                }
            }
        }
        best
    }

    /// Fetches the newest readable metadata. `None` means a fresh
    /// multi-cloud (no committed metadata anywhere).
    ///
    /// # Errors
    ///
    /// [`MetaError::Unreadable`] if versions exist but no cloud serves a
    /// consistent copy.
    pub fn read_remote(&self) -> Result<Option<RemoteState>, MetaError> {
        let Some(target) = self.read_version() else {
            return Ok(None);
        };
        // Prefer clouds advertising the target version, but fall back to
        // any cloud: stale copies lose to the version check below.
        for (_, cloud) in self.clouds.iter() {
            let Ok(base_ct) = Retry::new(&self.rt, &self.retry).run(|| cloud.download(BASE_PATH))
            else {
                continue;
            };
            let Ok(base_pt) = self.cipher.decrypt(&base_ct) else {
                continue;
            };
            let Ok(mut image) = SyncFolderImage::decode(&base_pt) else {
                continue;
            };
            let delta = match Retry::new(&self.rt, &self.retry).run(|| cloud.download(DELTA_PATH)) {
                Ok(delta_ct) => {
                    let Ok(delta_pt) = self.cipher.decrypt(&delta_ct) else {
                        continue;
                    };
                    let Ok(delta) = DeltaLog::decode(&delta_pt) else {
                        continue;
                    };
                    delta
                }
                Err(_) => DeltaLog::new(image.version.clone()),
            };
            if delta.base != image.version {
                continue; // torn read: delta belongs to another base
            }
            delta.apply_to(&mut image);
            if image.version != target && newer(&target, &image.version) {
                continue; // stale copy
            }
            let base_bytes = base_ct.len();
            return Ok(Some(RemoteState {
                image,
                delta,
                base_bytes,
            }));
        }
        Err(MetaError::Unreadable)
    }

    /// Commits metadata to the multi-cloud: uploads the delta (and, when
    /// `new_base` is set, a compacted base) plus the version file to
    /// every cloud. Succeeds when a majority acknowledged everything.
    ///
    /// Callers must hold the quorum lock.
    ///
    /// # Errors
    ///
    /// [`MetaError::QuorumWriteFailed`] when fewer than a quorum of
    /// clouds stored the update.
    pub fn write_remote(
        &self,
        new_base: Option<&SyncFolderImage>,
        delta: &DeltaLog,
        version: &VersionStamp,
    ) -> Result<(), MetaError> {
        // Mix the commit identity into the nonce so two devices (or two
        // sessions) sharing a passphrase never reuse a CBC IV.
        let nonce = self
            .nonce
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(version.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(unidrive_crypto::Sha1::digest(version.device.as_bytes()).as_bytes()[0] as u64)
            .wrapping_add(self.rt.now().as_nanos());
        let base_ct = new_base.map(|image| {
            unidrive_util::bytes::Bytes::from(self.cipher.encrypt(&image.encode(), nonce.wrapping_mul(3)))
        });
        let delta_ct =
            unidrive_util::bytes::Bytes::from(self.cipher.encrypt(&delta.encode(), nonce.wrapping_mul(3) + 1));
        let version_bytes = version.encode();
        // Replicate to every cloud concurrently; the version file goes
        // last on each cloud so its presence implies the data files.
        let tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = Arc::clone(cloud);
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                let base_ct = base_ct.clone();
                let delta_ct = delta_ct.clone();
                let version_bytes = version_bytes.clone();
                unidrive_sim::spawn(&self.rt, "meta-write", move || {
                    (|| -> Result<(), unidrive_cloud::CloudError> {
                        if let Some(base) = &base_ct {
                            Retry::new(&rt, &retry)
                                .run(|| cloud.upload(BASE_PATH, base.clone()))?;
                        }
                        Retry::new(&rt, &retry)
                            .run(|| cloud.upload(DELTA_PATH, delta_ct.clone()))?;
                        Retry::new(&rt, &retry)
                            .run(|| cloud.upload(VERSION_PATH, version_bytes.clone()))?;
                        Ok(())
                    })()
                    .is_ok()
                })
            })
            .collect();
        let acked = tasks.into_iter().filter(|_| true).map(|t| t.join()).filter(|ok| *ok).count();
        let quorum = self.clouds.quorum();
        if acked >= quorum {
            Ok(())
        } else {
            Err(MetaError::QuorumWriteFailed { acked, quorum })
        }
    }

    /// The quorum size of the underlying cloud set.
    pub fn quorum(&self) -> usize {
        self.clouds.quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unidrive_cloud::{ChaosCloud, CloudStore, FaultPlan, MemCloud};
    use unidrive_crypto::Sha1;
    use unidrive_meta::{SegmentId, Snapshot};
    use unidrive_sim::RealRuntime;

    fn clouds(n: usize) -> CloudSet {
        CloudSet::new(
            (0..n)
                .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
                .collect(),
        )
    }

    fn store(clouds: CloudSet) -> MetadataStore {
        MetadataStore::new(
            Arc::new(RealRuntime::new()),
            clouds,
            "test-passphrase",
            RetryPolicy::no_retries(),
        )
    }

    fn sample_image(counter: u64) -> SyncFolderImage {
        let mut img = SyncFolderImage::new();
        let seg = SegmentId(Sha1::digest(b"content"));
        img.ensure_segment(seg, 5);
        img.upsert_file(
            "f.txt",
            Snapshot {
                mtime_ns: 1,
                size: 5,
                segments: vec![seg],
            },
        );
        img.version = VersionStamp {
            device: "dev".into(),
            counter,
            timestamp_ns: counter,
        };
        img
    }

    #[test]
    fn fresh_multicloud_reads_none() {
        let s = store(clouds(3));
        assert_eq!(s.read_version(), None);
        assert!(s.read_remote().unwrap().is_none());
    }

    #[test]
    fn write_then_read_round_trips() {
        let s = store(clouds(5));
        let image = sample_image(1);
        let delta = DeltaLog::new(image.version.clone());
        s.write_remote(Some(&image), &delta, &image.version).unwrap();
        let remote = s.read_remote().unwrap().unwrap();
        assert_eq!(remote.image, image);
        assert_eq!(s.read_version().unwrap(), image.version);
    }

    #[test]
    fn delta_is_applied_on_read() {
        let s = store(clouds(3));
        let base = sample_image(1);
        let mut delta = DeltaLog::new(base.version.clone());
        let head = VersionStamp {
            device: "dev".into(),
            counter: 2,
            timestamp_ns: 2,
        };
        delta.append(
            vec![unidrive_meta::DeltaRecord::DeleteFile {
                path: "f.txt".into(),
            }],
            head.clone(),
        );
        s.write_remote(Some(&base), &delta, &head).unwrap();
        let remote = s.read_remote().unwrap().unwrap();
        assert_eq!(remote.image.version, head);
        assert!(remote.image.file("f.txt").is_none());
    }

    #[test]
    fn metadata_on_clouds_is_encrypted() {
        let set = clouds(3);
        let s = store(set.clone());
        let image = sample_image(1);
        let delta = DeltaLog::new(image.version.clone());
        s.write_remote(Some(&image), &delta, &image.version).unwrap();
        let raw = set.get(unidrive_cloud::CloudId(0)).download(BASE_PATH).unwrap();
        // Ciphertext must not decode as a plaintext image, and must not
        // contain the plaintext path.
        assert!(SyncFolderImage::decode(&raw).is_err());
        assert!(!raw.windows(5).any(|w| w == b"f.txt"));
        // And a wrong passphrase cannot read it.
        let wrong = MetadataStore::new(
            Arc::new(RealRuntime::new()),
            set,
            "wrong",
            RetryPolicy::no_retries(),
        );
        assert_eq!(wrong.read_remote().unwrap_err(), MetaError::Unreadable);
    }

    #[test]
    fn reader_picks_newest_version_across_clouds() {
        let set = clouds(3);
        let s = store(set.clone());
        let v1 = sample_image(1);
        let d1 = DeltaLog::new(v1.version.clone());
        s.write_remote(Some(&v1), &d1, &v1.version).unwrap();
        // Simulate a lagging replica: write v2 only to clouds 1 and 2 by
        // making cloud 0 reject uploads temporarily.
        let v2 = sample_image(2);
        let d2 = DeltaLog::new(v2.version.clone());
        let partial = CloudSet::new(vec![
            Arc::clone(set.get(unidrive_cloud::CloudId(1))),
            Arc::clone(set.get(unidrive_cloud::CloudId(2))),
        ]);
        let s_partial = store(partial);
        s_partial.write_remote(Some(&v2), &d2, &v2.version).unwrap();
        // A reader over all three clouds must see v2.
        let remote = s.read_remote().unwrap().unwrap();
        assert_eq!(remote.image.version.counter, 2);
    }

    #[test]
    fn quorum_write_failure_detected() {
        let rt: Arc<dyn unidrive_sim::Runtime> = Arc::new(unidrive_sim::RealRuntime::new());
        let mut members: Vec<Arc<dyn CloudStore>> = Vec::new();
        for i in 0..5 {
            let inner: Arc<dyn CloudStore> = Arc::new(MemCloud::new(format!("c{i}")));
            if i < 3 {
                let chaos =
                    ChaosCloud::new(inner, Arc::clone(&rt), &FaultPlan::new(i as u64));
                chaos.set_flat_probability(1.0);
                members.push(Arc::new(chaos));
            } else {
                members.push(inner);
            }
        }
        let s = store(CloudSet::new(members));
        let image = sample_image(1);
        let delta = DeltaLog::new(image.version.clone());
        assert!(matches!(
            s.write_remote(Some(&image), &delta, &image.version),
            Err(MetaError::QuorumWriteFailed { acked: 2, quorum: 3 })
        ));
    }

    #[test]
    fn newer_orders_by_counter_then_device() {
        let a = VersionStamp {
            device: "a".into(),
            counter: 2,
            timestamp_ns: 0,
        };
        let b = VersionStamp {
            device: "z".into(),
            counter: 1,
            timestamp_ns: 99,
        };
        assert!(newer(&a, &b));
        let c = VersionStamp {
            device: "b".into(),
            counter: 2,
            timestamp_ns: 0,
        };
        assert!(newer(&c, &a));
    }
}
