//! # unidrive-util
//!
//! Dependency-free building blocks shared by every other crate in the
//! workspace. The repo builds with **zero external crates** so it stays
//! compilable in sealed/offline environments; this crate supplies the
//! two pieces of third-party API the codebase leans on:
//!
//! - [`crate::bytes::Bytes`] — an immutable, cheaply-cloneable byte buffer
//!   over `Arc<[u8]>` (or a borrowed `&'static` slice) with zero-copy
//!   `slice()`.
//! - [`sync`] — `Mutex`/`RwLock`/`Condvar` wrappers over `std::sync`
//!   with the ergonomics the code was written against: `lock()` returns
//!   the guard directly (poisoning is transparently ignored — a
//!   panicked holder does not poison unrelated readers) and
//!   `Condvar::wait` takes the guard by `&mut`.
//! - [`pool`] — a worker pool whose order-preserving
//!   `par_map_indexed` parallelizes CPU-bound batch work (the ingest
//!   pipeline) without perturbing deterministic outputs.

#![warn(missing_docs)]

pub mod bytes;
pub mod pool;
pub mod sync;
