//! Protocol-level edge cases driven through the public API: wrong
//! passphrases, empty and tiny files, renames, idle polling, and sync
//! under fluctuating networks with transient failures.

use std::sync::Arc;
use std::time::Duration;

use unidrive::cloud::{CloudSet, CloudStore, FailureProfile, SimCloud, SimCloudConfig};
use unidrive::core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::{LinkProfile, Runtime, SimRng, SimRuntime};

fn steady_rig(seed: u64) -> (Arc<SimRuntime>, CloudSet) {
    let sim = SimRuntime::new(seed);
    let clouds = CloudSet::new(
        (0..5)
            .map(|i| {
                Arc::new(SimCloud::new(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(2e6, 8e6),
                )) as Arc<dyn CloudStore>
            })
            .collect(),
    );
    (sim, clouds)
}

fn client_with(
    sim: &Arc<SimRuntime>,
    clouds: &CloudSet,
    device: &str,
    passphrase: &str,
    seed: u64,
) -> (Arc<MemFolder>, UniDriveClient) {
    let folder = MemFolder::new();
    let mut config = ClientConfig::paper_default(device);
    config.passphrase = passphrase.into();
    config.data =
        DataPlaneConfig::with_params(RedundancyConfig::new(5, 3, 3, 2).unwrap(), 64 * 1024);
    let client = UniDriveClient::new(
        sim.clone().as_runtime(),
        clouds.clone(),
        Arc::clone(&folder) as Arc<dyn SyncFolder>,
        config,
        SimRng::seed_from_u64(seed),
    );
    (folder, client)
}

#[test]
fn wrong_passphrase_cannot_read_metadata() {
    let (sim, clouds) = steady_rig(1);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "right horse", 1);
    folder_a.write("secret.txt", b"top secret", 1).unwrap();
    a.sync_once().unwrap();

    let (_folder_b, mut b) = client_with(&sim, &clouds, "b", "wrong horse", 2);
    // The wrong-passphrase device sees a version file but cannot decrypt
    // the metadata: the pass errors rather than importing garbage.
    assert!(b.sync_once().is_err());
    assert_eq!(b.image().file_count(), 0);
}

#[test]
fn empty_files_sync() {
    let (sim, clouds) = steady_rig(2);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 3);
    let (folder_b, mut b) = client_with(&sim, &clouds, "b", "pw", 4);
    folder_a.write("empty.txt", b"", 1).unwrap();
    let rep = a.sync_once().unwrap();
    assert_eq!(rep.uploaded, vec!["empty.txt"]);
    let rep = b.sync_once().unwrap();
    assert_eq!(rep.downloaded, vec!["empty.txt"]);
    assert_eq!(folder_b.read("empty.txt").unwrap().len(), 0);
}

#[test]
fn one_byte_files_sync() {
    let (sim, clouds) = steady_rig(3);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 5);
    let (folder_b, mut b) = client_with(&sim, &clouds, "b", "pw", 6);
    folder_a.write("tiny", b"x", 1).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();
    assert_eq!(folder_b.read("tiny").unwrap().to_vec(), b"x");
}

#[test]
fn rename_is_delete_plus_create_with_dedup() {
    let (sim, clouds) = steady_rig(4);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 7);
    let (folder_b, mut b) = client_with(&sim, &clouds, "b", "pw", 8);
    let data: Vec<u8> = (0..100_000).map(|i| (i % 253) as u8).collect();
    folder_a.write("old-name.bin", &data, 1).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();

    // Rename: same content, new path.
    folder_a.remove("old-name.bin").unwrap();
    folder_a.write("new-name.bin", &data, 2).unwrap();
    let traffic_before: u64 = clouds
        .iter()
        .map(|(_, c)| c.name().len() as u64)
        .sum::<u64>(); // placeholder; real check below via sync effects
    let _ = traffic_before;
    let rep = a.sync_once().unwrap();
    assert_eq!(rep.uploaded, vec!["new-name.bin"]);
    assert_eq!(rep.deleted_remotely, vec!["old-name.bin"]);

    let rep = b.sync_once().unwrap();
    assert_eq!(rep.downloaded, vec!["new-name.bin"]);
    assert_eq!(rep.deleted_locally, vec!["old-name.bin"]);
    assert_eq!(folder_b.read("new-name.bin").unwrap().to_vec(), data);
    assert!(folder_b.read("old-name.bin").is_err());
}

#[test]
fn run_for_polls_and_converges() {
    let (sim, clouds) = steady_rig(5);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 9);
    let (folder_b, mut b) = client_with(&sim, &clouds, "b", "pw", 10);
    folder_a.write("f", &[1u8; 50_000], 1).unwrap();
    a.sync_once().unwrap();
    // The poll loop should pick the update up within a few intervals.
    let reports = b.run_for(Duration::from_secs(120));
    assert!(reports.iter().any(|r| r.downloaded.contains(&"f".into())));
    assert_eq!(folder_b.read("f").unwrap().len(), 50_000);
}

#[test]
fn sync_completes_under_fluctuation_and_failures() {
    let sim = SimRuntime::new(6);
    let clouds = CloudSet::new(
        (0..5)
            .map(|i| {
                let mk = |rate: f64| {
                    LinkProfile::new(rate, rate * 4.0)
                        .with_fluctuation(0.7, 0.08)
                        .with_epoch(Duration::from_secs(60))
                        .with_latency(Duration::from_millis(100), Duration::from_millis(60))
                };
                let cfg = SimCloudConfig {
                    up: mk(0.5e6 * (i + 1) as f64),
                    down: mk(1e6 * (i + 1) as f64),
                    failure: FailureProfile {
                        base: 0.03,
                        per_mb: 0.01,
                        max: 0.3,
                        degraded: 0.5,
                    },
                    quota_bytes: None,
                    request_overhead_bytes: 500,
                };
                Arc::new(SimCloud::new(&sim, format!("c{i}"), cfg)) as Arc<dyn CloudStore>
            })
            .collect(),
    );
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 11);
    let (folder_b, mut b) = client_with(&sim, &clouds, "b", "pw", 12);
    for i in 0..10 {
        folder_a
            .write(&format!("f{i}"), &vec![i as u8; 80_000], i as u64)
            .unwrap();
    }
    // Retry passes until everything lands (transient failures can defer
    // files or whole commits).
    let mut committed = 0;
    for _ in 0..20 {
        if let Ok(rep) = a.sync_once() {
            committed += rep.uploaded.len();
        }
        if committed >= 10 {
            break;
        }
        sim.sleep(Duration::from_secs(10));
    }
    assert_eq!(committed, 10, "all files eventually commit");
    let mut downloaded = 0;
    for _ in 0..20 {
        if let Ok(rep) = b.sync_once() {
            downloaded += rep.downloaded.len();
        }
        if downloaded >= 10 {
            break;
        }
        sim.sleep(Duration::from_secs(10));
    }
    assert_eq!(downloaded, 10, "all files eventually arrive");
    for i in 0..10 {
        assert_eq!(
            folder_b.read(&format!("f{i}")).unwrap().to_vec(),
            vec![i as u8; 80_000]
        );
    }
}

#[test]
fn idle_pass_is_cheap_thanks_to_version_file() {
    let (sim, clouds) = steady_rig(7);
    let handles: Vec<Arc<SimCloud>> = Vec::new();
    drop(handles);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 13);
    folder_a.write("f", &[9u8; 64_000], 1).unwrap();
    a.sync_once().unwrap();
    // Idle passes only download the tiny version file from each cloud.
    let t0 = sim.now();
    for _ in 0..10 {
        assert!(a.sync_once().unwrap().is_noop());
    }
    let elapsed = (sim.now() - t0).as_secs_f64();
    assert!(
        elapsed < 1.0,
        "ten idle passes took {elapsed}s; version polling should be cheap"
    );
}

#[test]
fn many_devices_bootstrap_from_existing_state() {
    let (sim, clouds) = steady_rig(8);
    let (folder_a, mut a) = client_with(&sim, &clouds, "a", "pw", 14);
    for i in 0..5 {
        folder_a
            .write(&format!("d/f{i}"), &vec![i as u8 + 1; 30_000], i as u64)
            .unwrap();
    }
    a.sync_once().unwrap();
    // Five late-joining devices all converge to identical folders.
    for d in 0..5 {
        let (folder, mut c) = client_with(&sim, &clouds, &format!("dev{d}"), "pw", 20 + d);
        c.sync_once().unwrap();
        assert_eq!(folder.file_count(), 5, "device {d}");
    }
}
