//! The UniDrive metadata data model (paper §5.1).
//!
//! All metadata lives in a single **SyncFolderImage**: the file-hierarchy
//! image (one [`FileEntry`] per file, each holding a [`Snapshot`]), and
//! the **segment pool** mapping content-addressed segments to their
//! `<Block-ID, Cloud-ID>` locations with reference counts for
//! deduplication. A compact [`VersionStamp`] identifies each committed
//! metadata version without global clock synchronization.

use std::collections::BTreeMap;

use unidrive_util::bytes::Bytes;
use unidrive_crypto::Digest;

use crate::codec::{DecodeError, Reader, Writer};

const IMAGE_MAGIC: [u8; 4] = *b"UDIM";
const IMAGE_VERSION: u8 = 1;

/// Content-addressed identity of a segment: the SHA-1 of its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub Digest);

impl SegmentId {
    /// Hex form used in cloud object names.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Location of one erasure-coded block: which block index of the segment
/// lives on which cloud (the paper's `<Block-ID, Cloud-ID>` pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockRef {
    /// Block index within the segment's code (0-based).
    pub index: u16,
    /// Cloud holding the block ([`CloudId`](unidrive_cloud::CloudId)
    /// index in the user's cloud set).
    pub cloud: u16,
}

/// Pool entry for one segment: its plaintext length, where its blocks
/// are, and how many snapshots reference it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentEntry {
    /// Plaintext segment length in bytes.
    pub len: u64,
    /// Known block locations, updated asynchronously as uploads finish.
    pub blocks: Vec<BlockRef>,
    /// Number of snapshot references (deduplication refcount).
    pub refcount: u32,
}

impl SegmentEntry {
    /// Adds a block location if not already present; returns whether it
    /// was new.
    pub fn add_block(&mut self, block: BlockRef) -> bool {
        if self.blocks.contains(&block) {
            false
        } else {
            self.blocks.push(block);
            self.blocks.sort();
            true
        }
    }

    /// Removes a block location; returns whether it was present.
    pub fn remove_block(&mut self, block: BlockRef) -> bool {
        if let Some(i) = self.blocks.iter().position(|b| *b == block) {
            self.blocks.remove(i);
            true
        } else {
            false
        }
    }

    /// Distinct block count currently stored on `cloud`.
    pub fn blocks_on(&self, cloud: u16) -> usize {
        self.blocks.iter().filter(|b| b.cloud == cloud).count()
    }
}

/// Point-in-time summary of one file: its size, timestamp and ordered
/// segment list (paper Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Snapshot {
    /// Modification time in nanoseconds of runtime time (device-local;
    /// only compared on the same device).
    pub mtime_ns: u64,
    /// File size in bytes.
    pub size: u64,
    /// Ordered segments whose concatenation is the file content.
    pub segments: Vec<SegmentId>,
}

/// One file in the hierarchy image, with an optional retained conflict
/// version (paper §5.2, "Conflicting Local and Cloud Updates").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// The current (winning) snapshot.
    pub snapshot: Snapshot,
    /// A conflicting snapshot retained for user resolution, tagged with
    /// the device that produced it.
    pub conflict: Option<(String, Snapshot)>,
}

/// Identifies a committed metadata version: `(device, counter)` with a
/// device-local timestamp — comparable for equality without any global
/// clock (paper §5.2, "version file").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VersionStamp {
    /// Device that committed this version.
    pub device: String,
    /// Device-local commit counter.
    pub counter: u64,
    /// Device-local timestamp (informational).
    pub timestamp_ns: u64,
}

impl VersionStamp {
    const MAGIC: [u8; 4] = *b"UDVS";

    /// Encodes to the small version file uploaded beside the metadata.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_header(Self::MAGIC, 1);
        w.put_str(&self.device);
        w.put_u64(self.counter);
        w.put_u64(self.timestamp_ns);
        w.finish()
    }

    /// Decodes a version file.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(data, Self::MAGIC, 1)?;
        Ok(VersionStamp {
            device: r.get_str("device")?,
            counter: r.get_u64("counter")?,
            timestamp_ns: r.get_u64("timestamp")?,
        })
    }
}

impl std::fmt::Display for VersionStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.device, self.counter)
    }
}

/// The single metadata file capturing the whole sync folder (paper §4):
/// file hierarchy, snapshots, and the segment pool.
///
/// # Examples
///
/// ```
/// use unidrive_meta::{SegmentId, SyncFolderImage, Snapshot};
/// use unidrive_crypto::Sha1;
///
/// let mut image = SyncFolderImage::new();
/// let seg = SegmentId(Sha1::digest(b"content"));
/// image.ensure_segment(seg, 7);
/// image.upsert_file(
///     "docs/a.txt",
///     Snapshot { mtime_ns: 1, size: 7, segments: vec![seg] },
/// );
/// assert_eq!(image.segment(&seg).unwrap().refcount, 1);
/// let restored = SyncFolderImage::decode(&image.encode()).unwrap();
/// assert_eq!(restored, image);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncFolderImage {
    /// Version of the last commit this image reflects.
    pub version: VersionStamp,
    files: BTreeMap<String, FileEntry>,
    segments: BTreeMap<SegmentId, SegmentEntry>,
}

impl SyncFolderImage {
    /// Creates an empty image (version zero).
    pub fn new() -> Self {
        SyncFolderImage::default()
    }

    /// Number of files in the hierarchy.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks up one file.
    pub fn file(&self, path: &str) -> Option<&FileEntry> {
        self.files.get(path)
    }

    /// Iterates over `(path, entry)` in path order.
    pub fn files(&self) -> impl Iterator<Item = (&str, &FileEntry)> {
        self.files.iter().map(|(p, e)| (p.as_str(), e))
    }

    /// Looks up one segment pool entry.
    pub fn segment(&self, id: &SegmentId) -> Option<&SegmentEntry> {
        self.segments.get(id)
    }

    /// Iterates over the segment pool.
    pub fn segments(&self) -> impl Iterator<Item = (&SegmentId, &SegmentEntry)> {
        self.segments.iter()
    }

    /// Registers a segment in the pool (refcount 0) if absent; updates
    /// the length if it was a placeholder.
    pub fn ensure_segment(&mut self, id: SegmentId, len: u64) -> &mut SegmentEntry {
        let entry = self.segments.entry(id).or_default();
        entry.len = len;
        entry
    }

    /// Records an uploaded block's location (the scheduler's completion
    /// callback, paper §6.2). Creates the pool entry if needed.
    pub fn record_block(&mut self, id: SegmentId, block: BlockRef) -> bool {
        self.segments.entry(id).or_default().add_block(block)
    }

    /// Forgets a block location (over-provisioned block cleanup, cloud
    /// removal).
    pub fn remove_block(&mut self, id: &SegmentId, block: BlockRef) -> bool {
        self.segments
            .get_mut(id)
            .map(|e| e.remove_block(block))
            .unwrap_or(false)
    }

    /// Inserts or replaces a file's snapshot, maintaining segment
    /// refcounts. Returns segments whose refcount dropped to zero (their
    /// blocks may be garbage-collected from the clouds).
    ///
    /// # Panics
    ///
    /// Panics if a referenced segment was not registered via
    /// [`ensure_segment`](SyncFolderImage::ensure_segment) or
    /// [`record_block`](SyncFolderImage::record_block).
    pub fn upsert_file(&mut self, path: &str, snapshot: Snapshot) -> Vec<SegmentId> {
        for id in &snapshot.segments {
            assert!(
                self.segments.contains_key(id),
                "segment {id} referenced before registration"
            );
        }
        let old = self.files.insert(
            path.to_owned(),
            FileEntry {
                snapshot: snapshot.clone(),
                conflict: None,
            },
        );
        for id in &snapshot.segments {
            self.segments
                .get_mut(id)
                .expect("checked above")
                .refcount += 1;
        }
        let mut garbage = Vec::new();
        if let Some(old) = old {
            garbage.extend(self.release_entry(&old));
        }
        garbage
    }

    /// Removes a file, returning newly-orphaned segments.
    pub fn delete_file(&mut self, path: &str) -> Vec<SegmentId> {
        match self.files.remove(path) {
            Some(entry) => self.release_entry(&entry),
            None => Vec::new(),
        }
    }

    /// Attaches a conflict snapshot to an existing file (both versions
    /// retained per the paper's resolution policy). The conflict's
    /// segments gain references so their data is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist or a segment is unregistered.
    pub fn attach_conflict(&mut self, path: &str, origin_device: &str, snapshot: Snapshot) {
        for id in &snapshot.segments {
            assert!(
                self.segments.contains_key(id),
                "segment {id} referenced before registration"
            );
        }
        for id in &snapshot.segments {
            self.segments.get_mut(id).expect("checked").refcount += 1;
        }
        let entry = self
            .files
            .get_mut(path)
            .expect("attach_conflict on missing file");
        if let Some((_, old)) = entry
            .conflict
            .replace((origin_device.to_owned(), snapshot))
        {
            // Release the previously retained conflict.
            let ids = old.segments.clone();
            for id in ids {
                if let Some(e) = self.segments.get_mut(&id) {
                    e.refcount = e.refcount.saturating_sub(1);
                }
            }
        }
    }

    /// Clears a file's conflict (user resolved it), returning orphaned
    /// segments.
    pub fn resolve_conflict(&mut self, path: &str) -> Vec<SegmentId> {
        let Some(entry) = self.files.get_mut(path) else {
            return Vec::new();
        };
        let Some((_, snap)) = entry.conflict.take() else {
            return Vec::new();
        };
        let mut garbage = Vec::new();
        for id in snap.segments {
            if let Some(e) = self.segments.get_mut(&id) {
                e.refcount = e.refcount.saturating_sub(1);
                if e.refcount == 0 {
                    garbage.push(id);
                }
            }
        }
        garbage
    }

    /// Drops zero-refcount segments from the pool, returning them with
    /// their block locations (for cloud-side deletion).
    pub fn collect_garbage(&mut self) -> Vec<(SegmentId, SegmentEntry)> {
        let dead: Vec<SegmentId> = self
            .segments
            .iter()
            .filter(|(_, e)| e.refcount == 0)
            .map(|(id, _)| *id)
            .collect();
        dead.into_iter()
            .map(|id| {
                let entry = self.segments.remove(&id).expect("listed above");
                (id, entry)
            })
            .collect()
    }

    /// Recomputes every segment refcount from the file entries (used
    /// after three-way merges).
    pub fn recompute_refcounts(&mut self) {
        for entry in self.segments.values_mut() {
            entry.refcount = 0;
        }
        let bump = |segments: &[SegmentId], pool: &mut BTreeMap<SegmentId, SegmentEntry>| {
            for id in segments {
                pool.entry(*id).or_default().refcount += 1;
            }
        };
        let files: Vec<(Vec<SegmentId>, Option<Vec<SegmentId>>)> = self
            .files
            .values()
            .map(|e| {
                (
                    e.snapshot.segments.clone(),
                    e.conflict.as_ref().map(|(_, s)| s.segments.clone()),
                )
            })
            .collect();
        for (main, conflict) in files {
            bump(&main, &mut self.segments);
            if let Some(c) = conflict {
                bump(&c, &mut self.segments);
            }
        }
    }

    fn release_entry(&mut self, entry: &FileEntry) -> Vec<SegmentId> {
        let mut ids = entry.snapshot.segments.clone();
        if let Some((_, c)) = &entry.conflict {
            ids.extend(c.segments.iter().copied());
        }
        let mut garbage = Vec::new();
        for id in ids {
            if let Some(e) = self.segments.get_mut(&id) {
                e.refcount = e.refcount.saturating_sub(1);
                if e.refcount == 0 {
                    garbage.push(id);
                }
            }
        }
        garbage
    }

    /// Serializes the whole image (the metadata *base* file).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_header(IMAGE_MAGIC, IMAGE_VERSION);
        w.put_str(&self.version.device);
        w.put_u64(self.version.counter);
        w.put_u64(self.version.timestamp_ns);
        w.put_u32(self.files.len() as u32);
        for (path, entry) in &self.files {
            w.put_str(path);
            encode_snapshot(&mut w, &entry.snapshot);
            match &entry.conflict {
                None => w.put_u8(0),
                Some((device, snap)) => {
                    w.put_u8(1);
                    w.put_str(device);
                    encode_snapshot(&mut w, snap);
                }
            }
        }
        w.put_u32(self.segments.len() as u32);
        for (id, entry) in &self.segments {
            w.put_fixed(id.0.as_bytes());
            w.put_u64(entry.len);
            w.put_u32(entry.refcount);
            w.put_u32(entry.blocks.len() as u32);
            for b in &entry.blocks {
                w.put_u16(b.index);
                w.put_u16(b.cloud);
            }
        }
        w.finish()
    }

    /// Deserializes an image.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on corruption or version mismatch.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(data, IMAGE_MAGIC, IMAGE_VERSION)?;
        let version = VersionStamp {
            device: r.get_str("version.device")?,
            counter: r.get_u64("version.counter")?,
            timestamp_ns: r.get_u64("version.timestamp")?,
        };
        let file_count = r.get_u32("file count")?;
        let mut files = BTreeMap::new();
        for _ in 0..file_count {
            let path = r.get_str("file path")?;
            let snapshot = decode_snapshot(&mut r)?;
            let conflict = match r.get_u8("conflict flag")? {
                0 => None,
                _ => {
                    let device = r.get_str("conflict device")?;
                    Some((device, decode_snapshot(&mut r)?))
                }
            };
            files.insert(path, FileEntry { snapshot, conflict });
        }
        let seg_count = r.get_u32("segment count")?;
        let mut segments = BTreeMap::new();
        for _ in 0..seg_count {
            let raw = r.get_fixed::<20>("segment id")?;
            let id = SegmentId(Digest(raw));
            let len = r.get_u64("segment len")?;
            let refcount = r.get_u32("segment refcount")?;
            let block_count = r.get_u32("block count")?;
            let mut blocks = Vec::with_capacity(block_count as usize);
            for _ in 0..block_count {
                blocks.push(BlockRef {
                    index: r.get_u16("block index")?,
                    cloud: r.get_u16("block cloud")?,
                });
            }
            segments.insert(
                id,
                SegmentEntry {
                    len,
                    blocks,
                    refcount,
                },
            );
        }
        Ok(SyncFolderImage {
            version,
            files,
            segments,
        })
    }
}

pub(crate) fn encode_snapshot(w: &mut Writer, s: &Snapshot) {
    w.put_u64(s.mtime_ns);
    w.put_u64(s.size);
    w.put_u32(s.segments.len() as u32);
    for id in &s.segments {
        w.put_fixed(id.0.as_bytes());
    }
}

pub(crate) fn decode_snapshot(r: &mut Reader<'_>) -> Result<Snapshot, DecodeError> {
    let mtime_ns = r.get_u64("snapshot mtime")?;
    let size = r.get_u64("snapshot size")?;
    let count = r.get_u32("snapshot segment count")?;
    let mut segments = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        segments.push(SegmentId(Digest(r.get_fixed::<20>("snapshot segment")?)));
    }
    Ok(Snapshot {
        mtime_ns,
        size,
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_crypto::Sha1;

    fn seg(tag: &str) -> SegmentId {
        SegmentId(Sha1::digest(tag.as_bytes()))
    }

    fn snap(tag: &str, size: u64) -> Snapshot {
        Snapshot {
            mtime_ns: 1,
            size,
            segments: vec![seg(tag)],
        }
    }

    fn image_with(paths: &[(&str, &str)]) -> SyncFolderImage {
        let mut img = SyncFolderImage::new();
        for (path, tag) in paths {
            img.ensure_segment(seg(tag), 10);
            img.upsert_file(path, snap(tag, 10));
        }
        img
    }

    #[test]
    fn refcounts_track_shared_segments() {
        let mut img = SyncFolderImage::new();
        img.ensure_segment(seg("shared"), 10);
        img.upsert_file("a", snap("shared", 10));
        img.upsert_file("b", snap("shared", 10));
        assert_eq!(img.segment(&seg("shared")).unwrap().refcount, 2);
        let garbage = img.delete_file("a");
        assert!(garbage.is_empty());
        let garbage = img.delete_file("b");
        assert_eq!(garbage, vec![seg("shared")]);
    }

    #[test]
    fn replacing_a_file_releases_old_segments() {
        let mut img = SyncFolderImage::new();
        img.ensure_segment(seg("v1"), 10);
        img.upsert_file("f", snap("v1", 10));
        img.ensure_segment(seg("v2"), 12);
        let garbage = img.upsert_file("f", snap("v2", 12));
        assert_eq!(garbage, vec![seg("v1")]);
        assert_eq!(img.segment(&seg("v2")).unwrap().refcount, 1);
    }

    #[test]
    fn block_recording_is_idempotent() {
        let mut img = SyncFolderImage::new();
        let b = BlockRef { index: 3, cloud: 1 };
        assert!(img.record_block(seg("s"), b));
        assert!(!img.record_block(seg("s"), b));
        assert_eq!(img.segment(&seg("s")).unwrap().blocks, vec![b]);
        assert!(img.remove_block(&seg("s"), b));
        assert!(!img.remove_block(&seg("s"), b));
    }

    #[test]
    fn blocks_on_counts_per_cloud() {
        let mut e = SegmentEntry::default();
        e.add_block(BlockRef { index: 0, cloud: 2 });
        e.add_block(BlockRef { index: 1, cloud: 2 });
        e.add_block(BlockRef { index: 2, cloud: 0 });
        assert_eq!(e.blocks_on(2), 2);
        assert_eq!(e.blocks_on(0), 1);
        assert_eq!(e.blocks_on(9), 0);
    }

    #[test]
    fn conflicts_retain_segment_references() {
        let mut img = image_with(&[("f", "main")]);
        img.ensure_segment(seg("theirs"), 10);
        img.attach_conflict("f", "laptop", snap("theirs", 10));
        assert_eq!(img.segment(&seg("theirs")).unwrap().refcount, 1);
        // Resolving frees the conflict copy.
        let garbage = img.resolve_conflict("f");
        assert_eq!(garbage, vec![seg("theirs")]);
        assert!(img.file("f").unwrap().conflict.is_none());
    }

    #[test]
    fn deleting_a_conflicted_file_releases_both_versions() {
        let mut img = image_with(&[("f", "main")]);
        img.ensure_segment(seg("theirs"), 10);
        img.attach_conflict("f", "laptop", snap("theirs", 10));
        let mut garbage = img.delete_file("f");
        garbage.sort();
        let mut expect = vec![seg("main"), seg("theirs")];
        expect.sort();
        assert_eq!(garbage, expect);
    }

    #[test]
    fn garbage_collection_drops_orphans_with_locations() {
        let mut img = image_with(&[("f", "v1")]);
        img.record_block(seg("v1"), BlockRef { index: 0, cloud: 0 });
        img.ensure_segment(seg("v2"), 10);
        img.upsert_file("f", snap("v2", 10));
        let collected = img.collect_garbage();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, seg("v1"));
        assert_eq!(collected[0].1.blocks.len(), 1);
        assert!(img.segment(&seg("v1")).is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut img = image_with(&[("a/b.txt", "s1"), ("c.bin", "s2")]);
        img.record_block(seg("s1"), BlockRef { index: 2, cloud: 4 });
        img.attach_conflict("c.bin", "phone", snap("s1", 10));
        img.version = VersionStamp {
            device: "laptop".into(),
            counter: 9,
            timestamp_ns: 1234,
        };
        let decoded = SyncFolderImage::decode(&img.encode()).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn version_stamp_round_trip() {
        let v = VersionStamp {
            device: "dev-α".into(),
            counter: 42,
            timestamp_ns: 7,
        };
        assert_eq!(VersionStamp::decode(&v.encode()).unwrap(), v);
        assert!(VersionStamp::decode(b"junk").is_err());
    }

    #[test]
    fn recompute_refcounts_matches_incremental() {
        let mut img = image_with(&[("a", "s1"), ("b", "s1"), ("c", "s2")]);
        let incremental: Vec<u32> = img.segments().map(|(_, e)| e.refcount).collect();
        img.recompute_refcounts();
        let recomputed: Vec<u32> = img.segments().map(|(_, e)| e.refcount).collect();
        assert_eq!(incremental, recomputed);
    }

    #[test]
    #[should_panic(expected = "referenced before registration")]
    fn unregistered_segment_rejected() {
        let mut img = SyncFolderImage::new();
        img.upsert_file("f", snap("ghost", 10));
    }
}
