//! Deterministic fault injection: [`FaultPlan`] schedules and the
//! [`ChaosCloud`] wrapper.
//!
//! The paper's robustness claims (§3.2, §7.3) are about *correlated*,
//! *scheduled* misbehaviour — a cloud going dark for a window, bursts of
//! transient errors, uploads torn mid-flight, metadata becoming visible
//! late — not just a flat per-request coin flip. A [`FaultPlan`] is a
//! seeded, serializable schedule of such faults; [`ChaosCloud`] applies
//! the plan to any [`CloudStore`] deterministically (same plan, same
//! seed ⇒ same injected faults), emitting an
//! [`Event::FaultInjected`] and `chaos.*` counters for every injection
//! so invariant checkers can reconcile observed damage against the
//! schedule.
//!
//! `ChaosCloud` subsumes the older ad-hoc knobs: a flat per-request
//! failure probability is
//! [`set_flat_probability`](ChaosCloud::set_flat_probability), and the
//! `SimCloud::set_available` outage switch is
//! [`set_available`](ChaosCloud::set_available).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unidrive_obs::{Event, Obs};
use unidrive_sim::{Runtime, SimRng};
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::{CloudError, CloudOp, CloudStore, ObjectInfo};

/// What a scheduled fault does while its window is active.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Each matching request fails transiently with this probability.
    TransientBurst {
        /// Per-request failure probability in `[0, 1]`.
        probability: f64,
    },
    /// The cloud refuses every matching request
    /// ([`CloudError::Unavailable`]).
    Outage,
    /// Uploads fail with [`CloudError::QuotaExceeded`] (zero bytes
    /// available); other operations are unaffected.
    QuotaExhausted,
    /// Matching requests sleep this long before proceeding.
    LatencySpike {
        /// Extra latency added to each matching request.
        extra_ms: u64,
    },
    /// Uploads persist a *prefix* of the payload and then fail
    /// transiently, with this probability — the object exists on the
    /// cloud but holds torn bytes the uploader never acknowledged.
    TornUpload {
        /// Per-upload tear probability in `[0, 1]`.
        probability: f64,
    },
    /// Read-after-write violation: objects written (by anyone) during
    /// the window are invisible to `list`/`download` through this handle
    /// until the window ends — except the handle's *own* writes, which
    /// stay visible (read-your-writes survives; cross-client
    /// read-after-write does not).
    DelayedVisibility,
}

impl FaultKind {
    /// Stable taxonomy label, matching the `kind` field of
    /// [`Event::FaultInjected`].
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TransientBurst { .. } => "transient",
            FaultKind::Outage => "outage",
            FaultKind::QuotaExhausted => "quota",
            FaultKind::LatencySpike { .. } => "latency",
            FaultKind::TornUpload { .. } => "torn_upload",
            FaultKind::DelayedVisibility => "delayed_visibility",
        }
    }
}

/// One scheduled fault: a [`FaultKind`] active on one cloud during
/// `[start_ns, end_ns)` of virtual time, optionally restricted to
/// specific operations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Cloud (provider) name the fault applies to.
    pub cloud: String,
    /// Operations affected; empty means all five.
    pub ops: Vec<CloudOp>,
    /// Window start (inclusive), nanoseconds of virtual time.
    pub start_ns: u64,
    /// Window end (exclusive), nanoseconds of virtual time.
    pub end_ns: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault on `cloud` active over the whole run, for all operations.
    pub fn always(cloud: impl Into<String>, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            cloud: cloud.into(),
            ops: Vec::new(),
            start_ns: 0,
            end_ns: u64::MAX,
            kind,
        }
    }

    /// Restricts the window to `[start, end)` seconds of virtual time.
    pub fn window_secs(mut self, start: u64, end: u64) -> FaultEvent {
        self.start_ns = start * 1_000_000_000;
        self.end_ns = end.saturating_mul(1_000_000_000);
        self
    }

    /// Restricts the fault to the given operations.
    pub fn on_ops(mut self, ops: &[CloudOp]) -> FaultEvent {
        self.ops = ops.to_vec();
        self
    }

    /// Whether this fault applies to `op` at virtual time `now_ns`.
    pub fn applies(&self, now_ns: u64, op: CloudOp) -> bool {
        self.start_ns <= now_ns
            && now_ns < self.end_ns
            && (self.ops.is_empty() || self.ops.contains(&op))
    }
}

/// A seeded, serializable schedule of faults.
///
/// The seed drives every probabilistic decision inside [`ChaosCloud`]
/// (via per-handle streams derived with `SimRng::derive`), so a plan
/// fully determines the injected faults of a run — which is what makes
/// schedule minimization (dropping events and replaying) meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic fault decisions.
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no scheduled faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// A plan with the given events.
    pub fn with_events(seed: u64, events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed, events }
    }

    /// Appends a fault event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The plan with event `index` removed (used by schedule
    /// minimization).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn without_event(&self, index: usize) -> FaultPlan {
        let mut events = self.events.clone();
        events.remove(index);
        FaultPlan {
            seed: self.seed,
            events,
        }
    }

    /// Deterministic JSON rendering of the schedule (kind fields are
    /// flattened next to the taxonomy label).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"cloud\":\"");
            out.push_str(&escape_json(&e.cloud));
            out.push_str("\",\"ops\":[");
            for (j, op) in e.ops.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(op.as_str());
                out.push('"');
            }
            out.push_str("],\"start_ns\":");
            out.push_str(&e.start_ns.to_string());
            out.push_str(",\"end_ns\":");
            out.push_str(&e.end_ns.to_string());
            out.push_str(",\"kind\":\"");
            out.push_str(e.kind.label());
            out.push('"');
            match &e.kind {
                FaultKind::TransientBurst { probability }
                | FaultKind::TornUpload { probability } => {
                    out.push_str(",\"probability\":");
                    out.push_str(&format!("{probability}"));
                }
                FaultKind::LatencySpike { extra_ms } => {
                    out.push_str(",\"extra_ms\":");
                    out.push_str(&extra_ms.to_string());
                }
                FaultKind::Outage | FaultKind::QuotaExhausted | FaultKind::DelayedVisibility => {}
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Applies a [`FaultPlan`] to a wrapped [`CloudStore`].
///
/// One `ChaosCloud` is one *client handle* onto one cloud: probabilistic
/// decisions come from a private stream derived from
/// `(plan.seed, cloud name, label salt)`, and delayed-visibility state
/// is tracked per handle (each client has its own view of what it can
/// see). Wrap each device's frontend separately in multi-device
/// experiments, salting with the device name
/// ([`with_label`](ChaosCloud::with_label)).
///
/// Fault gates run in a fixed order before the wrapped operation:
/// latency spike → outage / availability switch → quota (uploads) →
/// transient roll; torn uploads and delayed visibility act on the
/// operation itself. Every injection increments
/// `chaos.{cloud}.injected` and `chaos.{cloud}.{kind}` and traces an
/// [`Event::FaultInjected`] when an [`Obs`] is installed.
pub struct ChaosCloud {
    inner: Arc<dyn CloudStore>,
    rt: Arc<dyn Runtime>,
    events: Vec<FaultEvent>,
    flat_probability: Mutex<f64>,
    available: AtomicBool,
    rng: Mutex<SimRng>,
    injected: AtomicU64,
    obs: Mutex<Obs>,
    /// Paths this handle is allowed to see during a delayed-visibility
    /// window: its own writes plus anything it observed before (or
    /// between) windows.
    known: Mutex<HashSet<String>>,
}

impl std::fmt::Debug for ChaosCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosCloud")
            .field("inner", &self.inner.name())
            .field("events", &self.events.len())
            .field("flat_probability", &*self.flat_probability.lock())
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl ChaosCloud {
    /// Wraps `inner`, applying the events of `plan` addressed to its
    /// cloud name. Sleeps (latency spikes) and window checks use `rt`'s
    /// clock, so pass the simulation runtime for virtual-time schedules.
    pub fn new(inner: Arc<dyn CloudStore>, rt: Arc<dyn Runtime>, plan: &FaultPlan) -> ChaosCloud {
        Self::with_label(inner, rt, plan, "")
    }

    /// Like [`new`](ChaosCloud::new) but salts the handle's random
    /// stream with `salt` (e.g. the device name), so several handles
    /// onto the same cloud make independent — yet still deterministic —
    /// probabilistic decisions.
    pub fn with_label(
        inner: Arc<dyn CloudStore>,
        rt: Arc<dyn Runtime>,
        plan: &FaultPlan,
        salt: &str,
    ) -> ChaosCloud {
        let label = format!("chaos/{}/{}", inner.name(), salt);
        let events = plan
            .events
            .iter()
            .filter(|e| e.cloud == inner.name())
            .cloned()
            .collect();
        ChaosCloud {
            inner,
            rt,
            events,
            flat_probability: Mutex::new(0.0),
            available: AtomicBool::new(true),
            rng: Mutex::new(SimRng::derive(plan.seed, &label)),
            injected: AtomicU64::new(0),
            obs: Mutex::new(Obs::noop()),
            known: Mutex::new(HashSet::new()),
        }
    }

    /// Unscheduled flat per-request transient-failure probability, on
    /// top of any active [`FaultKind::TransientBurst`].
    pub fn set_flat_probability(&self, p: f64) {
        *self.flat_probability.lock() = p.clamp(0.0, 1.0);
    }

    /// Manual outage switch, independent of scheduled
    /// [`FaultKind::Outage`] windows (the `SimCloud::set_available`
    /// analogue for any wrapped store).
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// Installs an observability handle for injection counters and
    /// [`Event::FaultInjected`] traces.
    pub fn install_obs(&self, obs: Obs) {
        *self.obs.lock() = obs;
    }

    /// Total faults injected through this handle so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Current virtual time; only consulted when the plan has scheduled
    /// events, so handles over empty plans work on any runtime without
    /// touching a clock.
    fn now_ns(&self) -> u64 {
        if self.events.is_empty() {
            0
        } else {
            self.rt.now().as_nanos()
        }
    }

    fn record(&self, op: CloudOp, kind: &'static str) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        let obs = self.obs.lock().clone();
        if obs.is_enabled() {
            let name = self.inner.name();
            obs.inc(&format!("chaos.{name}.injected"));
            obs.inc(&format!("chaos.{name}.{kind}"));
            obs.event(|| Event::FaultInjected {
                cloud: name.to_owned(),
                op: op.as_str(),
                kind,
            });
        }
    }

    /// Runs the pre-operation gates; `payload` is the upload size (for
    /// quota errors).
    fn gate(&self, op: CloudOp, path: &str, payload: u64) -> Result<(), CloudError> {
        let now = self.now_ns();
        // 1. Latency spikes: sleep the largest active extra latency.
        let extra_ms = self
            .events
            .iter()
            .filter(|e| e.applies(now, op))
            .filter_map(|e| match e.kind {
                FaultKind::LatencySpike { extra_ms } => Some(extra_ms),
                _ => None,
            })
            .max();
        if let Some(ms) = extra_ms {
            self.record(op, "latency");
            self.rt.sleep(Duration::from_millis(ms));
        }
        // 2. Outage (scheduled window or the manual switch).
        let now = self.now_ns(); // the sleep may have crossed a boundary
        let in_outage = !self.available.load(Ordering::SeqCst)
            || self
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::Outage) && e.applies(now, op));
        if in_outage {
            self.record(op, "outage");
            return Err(CloudError::unavailable_op(
                self.inner.name().to_owned(),
                op,
                path,
            ));
        }
        // 3. Quota exhaustion (uploads only).
        if op == CloudOp::Upload
            && self
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::QuotaExhausted) && e.applies(now, op))
        {
            self.record(op, "quota");
            return Err(CloudError::QuotaExceeded {
                needed: payload,
                available: 0,
            });
        }
        // 4. Transient failures: flat knob and burst windows combine by
        // taking the largest probability.
        let mut p = *self.flat_probability.lock();
        for e in &self.events {
            if let FaultKind::TransientBurst { probability } = e.kind {
                if e.applies(now, op) {
                    p = p.max(probability);
                }
            }
        }
        if p > 0.0 && self.rng.lock().chance(p) {
            self.record(op, "transient");
            return Err(CloudError::transient_op("injected failure", op, path));
        }
        Ok(())
    }

    /// Whether newly written objects are currently invisible to `op`
    /// through this handle.
    fn visibility_delayed(&self, op: CloudOp) -> bool {
        let now = self.now_ns();
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::DelayedVisibility) && e.applies(now, op))
    }

    fn mark_known(&self, path: &str) {
        self.known.lock().insert(path.to_owned());
    }
}

impl CloudStore for ChaosCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        self.gate(CloudOp::Upload, path, data.len() as u64)?;
        // Torn upload: persist a prefix, then fail. The cloud now holds
        // bytes the uploader never acknowledged — exactly the anomaly
        // integrity checks downstream must surface.
        let now = self.now_ns();
        let tear_p = self
            .events
            .iter()
            .filter(|e| e.applies(now, CloudOp::Upload))
            .filter_map(|e| match e.kind {
                FaultKind::TornUpload { probability } => Some(probability),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        if tear_p > 0.0 && data.len() > 1 && self.rng.lock().chance(tear_p) {
            let prefix = data.slice(..data.len() / 2);
            self.inner.upload(path, prefix)?;
            self.record(CloudOp::Upload, "torn_upload");
            // The torn object exists on the cloud, so this handle can
            // see it even inside a visibility window.
            self.mark_known(path);
            return Err(CloudError::transient_op(
                "torn upload: prefix persisted",
                CloudOp::Upload,
                path,
            ));
        }
        self.inner.upload(path, data)?;
        self.mark_known(path);
        Ok(())
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        self.gate(CloudOp::Download, path, 0)?;
        if self.visibility_delayed(CloudOp::Download) && !self.known.lock().contains(path) {
            self.record(CloudOp::Download, "delayed_visibility");
            return Err(CloudError::not_found(path));
        }
        let data = self.inner.download(path)?;
        if !self.visibility_delayed(CloudOp::Download) {
            self.mark_known(path);
        }
        Ok(data)
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.gate(CloudOp::CreateDir, path, 0)?;
        self.inner.create_dir(path)?;
        self.mark_known(path);
        Ok(())
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.gate(CloudOp::List, path, 0)?;
        let entries = self.inner.list(path)?;
        if self.visibility_delayed(CloudOp::List) {
            let known = self.known.lock();
            let (kept, hidden): (Vec<ObjectInfo>, Vec<ObjectInfo>) =
                entries.into_iter().partition(|e| {
                    let full = if path.is_empty() {
                        e.name.clone()
                    } else {
                        format!("{path}/{}", e.name)
                    };
                    known.contains(&full)
                });
            drop(known);
            if !hidden.is_empty() {
                self.record(CloudOp::List, "delayed_visibility");
            }
            Ok(kept)
        } else {
            let mut known = self.known.lock();
            for e in &entries {
                let full = if path.is_empty() {
                    e.name.clone()
                } else {
                    format!("{path}/{}", e.name)
                };
                known.insert(full);
            }
            Ok(entries)
        }
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.gate(CloudOp::Delete, path, 0)?;
        self.inner.delete(path)?;
        self.known.lock().remove(path);
        Ok(())
    }

    fn caps(&self) -> crate::CloudCaps {
        let inner = self.inner.caps();
        // Appends go through the composed default so every sub-op is
        // gated — so even over a natively-appending store, the appends
        // this wrapper serves can tear.
        crate::CloudCaps {
            native_append: false,
            // A scheduled visibility window makes fresh objects
            // invisible to other handles: read-after-write is off the
            // table for the duration of the plan.
            read_after_write: inner.read_after_write
                && !self
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::DelayedVisibility)),
            ..inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemCloud;
    use unidrive_sim::SimRuntime;

    fn mem() -> Arc<dyn CloudStore> {
        Arc::new(MemCloud::new("c0"))
    }

    fn sim_rt() -> (Arc<SimRuntime>, Arc<dyn Runtime>) {
        let sim = SimRuntime::new(1);
        let rt = sim.clone().as_runtime();
        (sim, rt)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (_sim, rt) = sim_rt();
        let c = ChaosCloud::new(mem(), rt, &FaultPlan::new(7));
        c.upload("a/x", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(c.download("a/x").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(c.list("a").unwrap().len(), 1);
        c.delete("a/x").unwrap();
        assert_eq!(c.injected_faults(), 0);
    }

    #[test]
    fn flat_probability_subsumes_faulty_cloud() {
        let (_sim, rt) = sim_rt();
        let c = ChaosCloud::new(mem(), rt, &FaultPlan::new(11));
        c.set_flat_probability(0.3);
        let fails = (0..1000)
            .filter(|_| c.upload("x", Bytes::from_static(b"d")).is_err())
            .count();
        assert!((200..400).contains(&fails), "fails {fails}");
        assert_eq!(c.injected_faults(), fails as u64);
    }

    #[test]
    fn outage_window_is_time_indexed() {
        let (_sim, rt) = sim_rt();
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::Outage).window_secs(10, 20)],
        );
        let c = ChaosCloud::new(mem(), Arc::clone(&rt), &plan);
        c.upload("x", Bytes::from_static(b"a")).unwrap();
        rt.sleep(Duration::from_secs(15));
        let err = c.download("x").unwrap_err();
        assert!(matches!(err, CloudError::Unavailable { .. }), "{err}");
        assert_eq!(err.op(), Some(CloudOp::Download));
        rt.sleep(Duration::from_secs(10));
        c.download("x").unwrap();
    }

    #[test]
    fn manual_availability_switch_works_without_schedule() {
        let (_sim, rt) = sim_rt();
        let c = ChaosCloud::new(mem(), rt, &FaultPlan::new(5));
        c.set_available(false);
        assert!(c.list("").is_err());
        c.set_available(true);
        assert!(c.list("").is_ok());
    }

    #[test]
    fn quota_exhaustion_hits_uploads_only() {
        let (_sim, rt) = sim_rt();
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::QuotaExhausted)],
        );
        let c = ChaosCloud::new(mem(), rt, &plan);
        let err = c.upload("x", Bytes::from_static(b"abc")).unwrap_err();
        assert!(matches!(
            err,
            CloudError::QuotaExceeded {
                needed: 3,
                available: 0
            }
        ));
        assert!(c.list("").is_ok());
    }

    #[test]
    fn latency_spike_consumes_virtual_time() {
        let (sim, rt) = sim_rt();
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::LatencySpike { extra_ms: 250 })],
        );
        let c = ChaosCloud::new(mem(), rt, &plan);
        let t0 = sim.now();
        c.upload("x", Bytes::from_static(b"a")).unwrap();
        assert_eq!((sim.now() - t0).as_secs_f64(), 0.25);
    }

    #[test]
    fn torn_upload_persists_a_prefix_and_fails() {
        let (_sim, rt) = sim_rt();
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::TornUpload { probability: 1.0 })],
        );
        let inner: Arc<dyn CloudStore> = Arc::new(MemCloud::new("c0"));
        let c = ChaosCloud::new(Arc::clone(&inner), rt, &plan);
        let err = c
            .upload("seg/block0", Bytes::from_static(b"0123456789"))
            .unwrap_err();
        assert!(err.is_retryable());
        // The cloud holds unacknowledged torn bytes.
        let torn = inner.download("seg/block0").unwrap();
        assert_eq!(torn, Bytes::from_static(b"01234"));
        assert_eq!(c.injected_faults(), 1);
    }

    #[test]
    fn delayed_visibility_hides_foreign_writes_but_not_own() {
        let (_sim, rt) = sim_rt();
        let backing: Arc<dyn CloudStore> = Arc::new(MemCloud::new("c0"));
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::DelayedVisibility)],
        );
        let a = ChaosCloud::with_label(Arc::clone(&backing), Arc::clone(&rt), &plan, "dev-a");
        let b = ChaosCloud::with_label(Arc::clone(&backing), rt, &plan, "dev-b");
        a.upload("locks/lock_a", Bytes::from_static(b"a")).unwrap();
        // Read-your-writes: the writer sees its own lock file…
        assert_eq!(a.list("locks").unwrap().len(), 1);
        assert!(a.download("locks/lock_a").is_ok());
        // …but the other handle observes an empty directory.
        assert_eq!(b.list("locks").unwrap().len(), 0);
        assert!(matches!(
            b.download("locks/lock_a").unwrap_err(),
            CloudError::NotFound { .. }
        ));
        assert!(b.injected_faults() >= 1);
    }

    #[test]
    fn delayed_visibility_window_ends() {
        let (_sim, rt) = sim_rt();
        let backing: Arc<dyn CloudStore> = Arc::new(MemCloud::new("c0"));
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::DelayedVisibility).window_secs(0, 10)],
        );
        let a = ChaosCloud::with_label(Arc::clone(&backing), Arc::clone(&rt), &plan, "a");
        let b = ChaosCloud::with_label(backing, Arc::clone(&rt), &plan, "b");
        a.upload("f", Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.list("").unwrap().len(), 0);
        rt.sleep(Duration::from_secs(11));
        assert_eq!(b.list("").unwrap().len(), 1);
        assert!(b.download("f").is_ok());
    }

    #[test]
    fn same_seed_injects_identically() {
        for _ in 0..2 {
            let run = |seed: u64| -> Vec<bool> {
                let (_sim, rt) = sim_rt();
                let plan = FaultPlan::with_events(
                    seed,
                    vec![FaultEvent::always(
                        "c0",
                        FaultKind::TransientBurst { probability: 0.5 },
                    )],
                );
                let c = ChaosCloud::new(mem(), rt, &plan);
                (0..64)
                    .map(|i| c.upload(&format!("f{i}"), Bytes::from_static(b"x")).is_ok())
                    .collect()
            };
            assert_eq!(run(9), run(9));
            assert_ne!(run(9), run(10));
        }
    }

    #[test]
    fn injections_emit_obs_events_and_counters() {
        use unidrive_obs::Registry;
        let (_sim, rt) = sim_rt();
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("c0", FaultKind::Outage)],
        );
        let c = ChaosCloud::new(mem(), rt, &plan);
        let obs = Obs::with_registry(Registry::new());
        c.install_obs(obs.clone());
        let _ = c.upload("x", Bytes::from_static(b"a"));
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("chaos.c0.injected"), 1);
        assert_eq!(snap.counter("chaos.c0.outage"), 1);
        assert_eq!(snap.event_count("FaultInjected"), 1);
    }

    #[test]
    fn plan_json_is_deterministic_and_complete() {
        let plan = FaultPlan::with_events(
            42,
            vec![
                FaultEvent::always("a", FaultKind::TransientBurst { probability: 0.5 })
                    .window_secs(1, 2)
                    .on_ops(&[CloudOp::Upload, CloudOp::List]),
                FaultEvent::always("b", FaultKind::LatencySpike { extra_ms: 30 }),
                FaultEvent::always("c", FaultKind::DelayedVisibility),
            ],
        );
        let json = plan.to_json();
        assert_eq!(json, plan.to_json());
        assert_eq!(
            json,
            concat!(
                "{\"seed\":42,\"events\":[",
                "{\"cloud\":\"a\",\"ops\":[\"upload\",\"list\"],\"start_ns\":1000000000,",
                "\"end_ns\":2000000000,\"kind\":\"transient\",\"probability\":0.5},",
                "{\"cloud\":\"b\",\"ops\":[],\"start_ns\":0,\"end_ns\":18446744073709551615,",
                "\"kind\":\"latency\",\"extra_ms\":30},",
                "{\"cloud\":\"c\",\"ops\":[],\"start_ns\":0,\"end_ns\":18446744073709551615,",
                "\"kind\":\"delayed_visibility\"}]}"
            )
        );
        let smaller = plan.without_event(1);
        assert_eq!(smaller.events.len(), 2);
        assert_eq!(smaller.events[1].cloud, "c");
    }

    #[test]
    fn events_for_other_clouds_are_ignored() {
        let (_sim, rt) = sim_rt();
        let plan = FaultPlan::with_events(
            3,
            vec![FaultEvent::always("other", FaultKind::Outage)],
        );
        let c = ChaosCloud::new(mem(), rt, &plan);
        c.upload("x", Bytes::from_static(b"a")).unwrap();
        assert_eq!(c.injected_faults(), 0);
    }
}
