//! Storage maintenance: trimming over-provisioned parity blocks.
//!
//! Over-provisioned blocks exist to accelerate transfers; once a file
//! has been synced everywhere they only consume quota, so the paper
//! reclaims them: "over-provisioned parity blocks will be cleaned to
//! reclaim storage space when the corresponding file is sync'ed to all
//! devices" (§6.2). Trimming never drops below each cloud's fair share,
//! so the reliability requirement stays intact.

use unidrive_erasure::RedundancyConfig;
use unidrive_meta::{BlockRef, SegmentId, SyncFolderImage};

/// Plan of blocks that can be reclaimed without violating reliability:
/// for every segment, each cloud keeps its fair share and any block
/// beyond it is surplus.
///
/// Returns `(segment, block)` pairs to delete; apply with
/// [`DataPlane::delete_blocks`](crate::DataPlane::delete_blocks)-style
/// deletion plus [`SyncFolderImage::remove_block`] on the image the
/// caller then commits.
pub fn trim_plan(
    image: &SyncFolderImage,
    redundancy: &RedundancyConfig,
) -> Vec<(SegmentId, BlockRef)> {
    let fair = redundancy.fair_share();
    let mut plan = Vec::new();
    for (id, entry) in image.segments() {
        if entry.refcount == 0 {
            continue; // garbage collection handles orphans wholesale
        }
        let mut per_cloud: std::collections::BTreeMap<u16, Vec<BlockRef>> = Default::default();
        for b in &entry.blocks {
            per_cloud.entry(b.cloud).or_default().push(*b);
        }
        for (_, mut blocks) in per_cloud {
            if blocks.len() > fair {
                // Keep the lowest-indexed blocks (the deterministic
                // normal assignment), trim the over-provisioned rest.
                blocks.sort_by_key(|b| b.index);
                for b in blocks.split_off(fair) {
                    plan.push((*id, b));
                }
            }
        }
    }
    plan
}

/// Executes a trim: deletes the surplus blocks from the clouds (best
/// effort) and removes them from `image`. Returns how many blocks were
/// reclaimed.
pub fn trim_overprovisioned(
    plane: &crate::DataPlane,
    image: &mut SyncFolderImage,
    redundancy: &RedundancyConfig,
) -> usize {
    let plan = trim_plan(image, redundancy);
    for (id, block) in &plan {
        // A block on a cloud no longer in the set cannot be deleted
        // remotely, but it should still leave the image.
        if let Some(cloud) = plane
            .clouds()
            .try_get(unidrive_cloud::CloudId(block.cloud as usize))
        {
            let _ = cloud.delete(&unidrive_meta::block_path(id, block.index));
        }
        image.remove_block(id, *block);
    }
    plan.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_crypto::Sha1;
    use unidrive_meta::Snapshot;

    fn image_with_blocks(blocks: &[(u16, u16)]) -> (SyncFolderImage, SegmentId) {
        let id = SegmentId(Sha1::digest(b"seg"));
        let mut image = SyncFolderImage::new();
        image.ensure_segment(id, 100);
        image.upsert_file(
            "f",
            Snapshot {
                mtime_ns: 0,
                size: 100,
                segments: vec![id],
            },
        );
        for &(index, cloud) in blocks {
            image.record_block(id, BlockRef { index, cloud });
        }
        (image, id)
    }

    #[test]
    fn trims_only_beyond_fair_share() {
        let redundancy = RedundancyConfig::paper_default(); // fair share 1
        // Cloud 0 holds two blocks (one over-provisioned), cloud 1 one.
        let (image, id) = image_with_blocks(&[(0, 0), (5, 0), (1, 1)]);
        let plan = trim_plan(&image, &redundancy);
        assert_eq!(plan, vec![(id, BlockRef { index: 5, cloud: 0 })]);
    }

    #[test]
    fn fair_share_only_layout_is_untouched() {
        let redundancy = RedundancyConfig::paper_default();
        let (image, _) = image_with_blocks(&[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert!(trim_plan(&image, &redundancy).is_empty());
    }

    #[test]
    fn orphan_segments_are_left_to_gc() {
        let redundancy = RedundancyConfig::paper_default();
        let (mut image, _) = image_with_blocks(&[(0, 0), (5, 0)]);
        image.delete_file("f"); // refcount -> 0
        assert!(trim_plan(&image, &redundancy).is_empty());
    }

    #[test]
    fn trim_preserves_reliability_end_to_end() {
        use std::collections::HashSet;
        use std::sync::Arc;
        use unidrive_cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
        use unidrive_sim::SimRuntime;

        let sim = SimRuntime::new(77);
        let mut handles = Vec::new();
        let clouds = CloudSet::new(
            (0..5)
                .map(|i| {
                    // Uneven speeds force over-provisioning.
                    let c = Arc::new(SimCloud::new(
                        &sim,
                        format!("c{i}"),
                        SimCloudConfig::steady(0.2e6 * (i + 1) as f64, 4e6),
                    ));
                    handles.push(Arc::clone(&c));
                    c as Arc<dyn CloudStore>
                })
                .collect(),
        );
        let redundancy = RedundancyConfig::paper_default();
        let plane = crate::DataPlane::new(
            sim.clone().as_runtime(),
            clouds,
            crate::DataPlaneConfig::with_params(redundancy, 128 * 1024),
        );
        let data: unidrive_util::bytes::Bytes = (0..400_000u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>().into();
        let (report, segs) = plane.upload_files(
            vec![crate::UploadRequest {
                path: "f".into(),
                data: data.clone(),
            }],
            &HashSet::new(),
        );
        assert!(report.all_available());
        let mut image = SyncFolderImage::new();
        for (id, len) in &segs[0].segments {
            image.ensure_segment(*id, *len);
        }
        for (id, b) in &report.blocks {
            image.record_block(*id, *b);
        }
        image.upsert_file(
            "f",
            Snapshot {
                mtime_ns: 0,
                size: segs[0].size,
                segments: segs[0].segments.iter().map(|(id, _)| *id).collect(),
            },
        );
        let before: usize = image.segments().map(|(_, e)| e.blocks.len()).sum();
        let trimmed = trim_overprovisioned(&plane, &mut image, &redundancy);
        assert!(trimmed > 0, "uneven clouds should have produced extras");
        let after: usize = image.segments().map(|(_, e)| e.blocks.len()).sum();
        assert_eq!(after, before - trimmed);
        // Every cloud still holds exactly its fair share.
        for (_, entry) in image.segments() {
            for cloud in 0..5u16 {
                assert_eq!(entry.blocks_on(cloud), redundancy.fair_share());
            }
        }
        // And the file still reconstructs.
        assert_eq!(plane.download_file(&image, "f").unwrap(), data.to_vec());
    }
}
