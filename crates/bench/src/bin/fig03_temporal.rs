//! **Figure 3** — temporal dimension of the measurement study (§3.2):
//! daily upload time of an 8 MB file over a simulated month on the
//! Princeton node, for the three US clouds.
//!
//! Shape targets: heavy unpredictable fluctuation (max/min within the
//! month reaching order-10×, the paper quotes up to 17× within a day),
//! and the three clouds' series being largely *independent* (pairwise
//! correlation near zero).

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::SingleCloudClient;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{build_cloud, pearson, random_bytes, site_by_name, Provider, Summary, TextTable};

fn main() {
    let site = site_by_name("Princeton").expect("site exists");
    let days = 30;
    let data = random_bytes(8 * 1024 * 1024, 3);

    // One shared world so the three clouds' fluctuations share a clock
    // (and can be tested for independence).
    let sim = SimRuntime::new(303);
    let clients: Vec<(Provider, SingleCloudClient)> = Provider::US
        .iter()
        .map(|&p| {
            let cloud = build_cloud(&sim, site, p);
            (
                p,
                SingleCloudClient::new(sim.clone().as_runtime(), Arc::clone(&cloud) as _, 5),
            )
        })
        .collect();

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); clients.len()];
    let mut table = TextTable::new(&["day", "Dropbox", "OneDrive", "GoogleDrive"]);
    for day in 0..days {
        let mut cells = vec![format!("{day:02}")];
        for (i, (_, client)) in clients.iter().enumerate() {
            // Up to a few attempts: transient failures happen (paper
            // §3.2); a day's sample is the first success.
            let mut took = None;
            for attempt in 0..3 {
                if let Ok(d) = client.upload(&format!("d{day}-a{attempt}"), data.clone()) {
                    took = Some(d.as_secs_f64());
                    break;
                }
            }
            match took {
                Some(t) => {
                    series[i].push(t);
                    cells.push(format!("{t:.1}"));
                }
                None => cells.push("fail".into()),
            }
        }
        table.row(cells);
        sim.sleep(Duration::from_secs(86_400));
    }

    println!("Figure 3: daily 8 MB upload seconds over a month, Princeton\n");
    println!("{}", table.render());
    for (i, (p, _)) in clients.iter().enumerate() {
        if let Some(s) = Summary::of(&series[i]) {
            println!(
                "{:12} fluctuation max/min = {:.1}x (paper: up to 17x within a day)",
                p.name(),
                s.max_over_min()
            );
        }
    }
    for a in 0..clients.len() {
        for b in (a + 1)..clients.len() {
            let n = series[a].len().min(series[b].len());
            if let Some(r) = pearson(&series[a][..n], &series[b][..n]) {
                println!(
                    "corr({}, {}) = {r:+.2} (paper: largely independent)",
                    clients[a].0.name(),
                    clients[b].0.name()
                );
            }
        }
    }
}
