//! Convenience runner: executes every experiment binary in sequence
//! (with whatever scale argument was passed through) and prints each
//! one's output with a banner. Useful for regenerating EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p unidrive-bench --bin run_all quick
//! ```

use std::process::Command;

const EXPERIMENTS: [&str; 17] = [
    "fig01_spatial",
    "fig02_filesize_throughput",
    "fig03_temporal",
    "fig04_failure_rate",
    "tab01_failure_correlation",
    "fig08_micro",
    "fig09_sizes",
    "fig10_hourly",
    "fig11_batch_sync",
    "fig12_cumulative",
    "tab02_variance",
    "tab03_overhead",
    "fig13_delta_sync",
    "fig14_reliability",
    "fig15_trial_throughput",
    "fig16_trial_daily",
    "ablations",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let this_exe = std::env::current_exe().expect("own path");
    let bin_dir = this_exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================\n");
        let status = Command::new(bin_dir.join(name))
            .args(&passthrough)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to start: {e} (build with `cargo build --release -p unidrive-bench --bins` first)");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
