//! End-to-end integration tests: two UniDrive devices synchronizing
//! through five simulated clouds under virtual time (the scenario of
//! the paper's Fig. 11 at small scale).

use std::sync::Arc;
use std::time::Duration;

use unidrive::cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive::core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::{Runtime, SimRng, SimRuntime};

struct Rig {
    sim: Arc<SimRuntime>,
    clouds: CloudSet,
    handles: Vec<Arc<SimCloud>>,
}

fn rig(seed: u64) -> Rig {
    let sim = SimRuntime::new(seed);
    let mut handles = Vec::new();
    let members = (0..5)
        .map(|i| {
            let c = Arc::new(SimCloud::new(
                &sim,
                format!("cloud{i}"),
                SimCloudConfig::steady(2e6, 8e6),
            ));
            handles.push(Arc::clone(&c));
            c as Arc<dyn CloudStore>
        })
        .collect();
    Rig {
        sim,
        clouds: CloudSet::new(members),
        handles,
    }
}

fn client(rig: &Rig, device: &str, folder: &Arc<MemFolder>, seed: u64) -> UniDriveClient {
    let mut config = ClientConfig::paper_default(device);
    config.data = DataPlaneConfig::with_params(
        RedundancyConfig::new(5, 3, 3, 2).unwrap(),
        64 * 1024, // small θ keeps tests fast
    );
    config.poll_interval = Duration::from_secs(5);
    UniDriveClient::new(
        rig.sim.clone().as_runtime(),
        rig.clouds.clone(),
        Arc::clone(folder) as Arc<dyn unidrive::core::SyncFolder>,
        config,
        SimRng::seed_from_u64(seed),
    )
}

fn content(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(tag).wrapping_add(tag))
        .collect()
}

#[test]
fn file_created_on_a_appears_on_b() {
    let r = rig(1);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 11);
    let mut b = client(&r, "device-b", &folder_b, 12);

    let data = content(300_000, 3);
    folder_a.write("docs/report.bin", &data, 100).unwrap();

    let up = a.sync_once().expect("A commits");
    assert_eq!(up.uploaded, vec!["docs/report.bin"]);

    let down = b.sync_once().expect("B pulls");
    assert_eq!(down.downloaded, vec!["docs/report.bin"]);
    assert_eq!(folder_b.read("docs/report.bin").unwrap().to_vec(), data);
}

#[test]
fn edits_propagate_and_deletes_propagate() {
    let r = rig(2);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 21);
    let mut b = client(&r, "device-b", &folder_b, 22);

    folder_a.write("f.bin", &content(100_000, 1), 1).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();

    // Edit on A.
    let v2 = content(120_000, 2);
    folder_a.write("f.bin", &v2, 2).unwrap();
    a.sync_once().unwrap();
    let rep = b.sync_once().unwrap();
    assert_eq!(rep.downloaded, vec!["f.bin"]);
    assert_eq!(folder_b.read("f.bin").unwrap().to_vec(), v2);

    // Delete on B.
    folder_b.remove("f.bin").unwrap();
    let rep = b.sync_once().unwrap();
    assert_eq!(rep.deleted_remotely, vec!["f.bin"]);
    let rep = a.sync_once().unwrap();
    assert_eq!(rep.deleted_locally, vec!["f.bin"]);
    assert!(folder_a.read("f.bin").is_err());
}

#[test]
fn sync_survives_two_cloud_outage() {
    let r = rig(3);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 31);
    let mut b = client(&r, "device-b", &folder_b, 32);

    let data = content(200_000, 7);
    folder_a.write("x.bin", &data, 1).unwrap();
    a.sync_once().unwrap();

    // K_r = 3 of 5: two clouds may die.
    r.handles[1].set_available(false);
    r.handles[4].set_available(false);

    let rep = b.sync_once().expect("B syncs despite two outages");
    assert_eq!(rep.downloaded, vec!["x.bin"]);
    assert_eq!(folder_b.read("x.bin").unwrap().to_vec(), data);
}

#[test]
fn concurrent_edits_yield_conflict_with_both_versions_retained() {
    let r = rig(4);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 41);
    let mut b = client(&r, "device-b", &folder_b, 42);

    folder_a.write("shared.txt", &content(50_000, 1), 1).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();

    // Both edit without syncing in between.
    let version_a = content(60_000, 2);
    let version_b = content(70_000, 3);
    folder_a.write("shared.txt", &version_a, 2).unwrap();
    folder_b.write("shared.txt", &version_b, 2).unwrap();

    // A commits first; B's commit discovers the cloud update and merges.
    a.sync_once().unwrap();
    let rep_b = b.sync_once().unwrap();
    assert_eq!(rep_b.conflicts, vec!["shared.txt"]);

    // The cloud (A's) version wins the main slot on B...
    assert_eq!(folder_b.read("shared.txt").unwrap().to_vec(), version_a);
    // ...and B's version is retained as a fetchable conflict copy.
    assert_eq!(b.conflicts(), vec!["shared.txt"]);
    let retained = b
        .fetch_conflict_copy("shared.txt")
        .expect("copy reachable")
        .expect("conflict recorded");
    assert_eq!(retained, version_b);

    // A eventually also sees the conflict marker.
    let rep_a = a.sync_once().unwrap();
    assert!(rep_a.conflicts.contains(&"shared.txt".to_string()));
    assert_eq!(folder_a.read("shared.txt").unwrap().to_vec(), version_a);
}

#[test]
fn identical_concurrent_edits_do_not_conflict() {
    let r = rig(5);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 51);
    let mut b = client(&r, "device-b", &folder_b, 52);

    let same = content(80_000, 9);
    folder_a.write("same.bin", &same, 1).unwrap();
    folder_b.write("same.bin", &same, 1).unwrap();
    a.sync_once().unwrap();
    let rep = b.sync_once().unwrap();
    assert!(rep.conflicts.is_empty(), "identical content: no conflict");
    assert!(b.conflicts().is_empty());
}

#[test]
fn three_devices_converge() {
    let r = rig(6);
    let folders: Vec<Arc<MemFolder>> = (0..3).map(|_| MemFolder::new()).collect();
    let mut clients: Vec<UniDriveClient> = folders
        .iter()
        .enumerate()
        .map(|(i, f)| client(&r, &format!("device-{i}"), f, 60 + i as u64))
        .collect();

    // Each device creates its own file.
    for (i, f) in folders.iter().enumerate() {
        f.write(&format!("from-{i}.bin"), &content(50_000, i as u8 + 1), 1)
            .unwrap();
    }
    // Two rounds of sync propagate everything everywhere.
    for _ in 0..3 {
        for c in clients.iter_mut() {
            let _ = c.sync_once().expect("sync pass");
            r.sim.sleep(Duration::from_secs(1));
        }
    }
    for f in &folders {
        for i in 0..3 {
            assert_eq!(
                f.read(&format!("from-{i}.bin")).unwrap().to_vec(),
                content(50_000, i as u8 + 1),
                "file from-{i} missing on some device"
            );
        }
    }
}

#[test]
fn deduplicated_copy_transfers_no_new_blocks() {
    let r = rig(7);
    let folder_a = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 71);

    let data = content(150_000, 5);
    folder_a.write("one.bin", &data, 1).unwrap();
    a.sync_once().unwrap();
    let traffic_before: u64 = r.handles.iter().map(|h| h.traffic().uploaded_bytes).sum();

    // A byte-identical copy under another name: dedup should make the
    // commit metadata-only.
    folder_a.write("two.bin", &data, 2).unwrap();
    a.sync_once().unwrap();
    let traffic_after: u64 = r.handles.iter().map(|h| h.traffic().uploaded_bytes).sum();
    let delta = traffic_after - traffic_before;
    assert!(
        delta < 100_000,
        "copy of a 150 KB file moved {delta} bytes; dedup failed"
    );
    // Both files resolvable.
    assert_eq!(a.image().file_count(), 2);
}

#[test]
fn lock_serializes_concurrent_commits() {
    // Two devices committing different files at the same virtual time
    // must both succeed (one waits for the other's lock).
    let r = rig(8);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    folder_a.write("a.bin", &content(60_000, 1), 1).unwrap();
    folder_b.write("b.bin", &content(60_000, 2), 1).unwrap();

    let rt = r.sim.clone().as_runtime();
    let (r1, r2) = {
        let rig_clouds = r.clouds.clone();
        let sim = r.sim.clone();
        let fa = Arc::clone(&folder_a);
        let t1 = unidrive::sim::spawn(&rt, "dev-a", {
            let clouds = rig_clouds.clone();
            move || {
                let mut config = ClientConfig::paper_default("device-a");
                config.data = DataPlaneConfig::with_params(
                    RedundancyConfig::new(5, 3, 3, 2).unwrap(),
                    64 * 1024,
                );
                let mut c = UniDriveClient::new(
                    sim.clone().as_runtime(),
                    clouds,
                    fa as Arc<dyn unidrive::core::SyncFolder>,
                    config,
                    SimRng::seed_from_u64(81),
                );
                c.sync_once().map(|r| r.uploaded).map_err(|e| e.to_string())
            }
        });
        let sim = r.sim.clone();
        let fb = Arc::clone(&folder_b);
        let t2 = unidrive::sim::spawn(&rt, "dev-b", {
            let clouds = rig_clouds.clone();
            move || {
                let mut config = ClientConfig::paper_default("device-b");
                config.data = DataPlaneConfig::with_params(
                    RedundancyConfig::new(5, 3, 3, 2).unwrap(),
                    64 * 1024,
                );
                let mut c = UniDriveClient::new(
                    sim.clone().as_runtime(),
                    clouds,
                    fb as Arc<dyn unidrive::core::SyncFolder>,
                    config,
                    SimRng::seed_from_u64(82),
                );
                c.sync_once().map(|r| r.uploaded).map_err(|e| e.to_string())
            }
        });
        (t1.join(), t2.join())
    };
    assert_eq!(r1.unwrap(), vec!["a.bin"]);
    assert_eq!(r2.unwrap(), vec!["b.bin"]);

    // A third device sees both commits.
    let folder_c = MemFolder::new();
    let mut c = client(&r, "device-c", &folder_c, 83);
    let rep = c.sync_once().unwrap();
    assert_eq!(rep.downloaded.len(), 2);
}

#[test]
fn many_small_files_sync_in_one_pass() {
    let r = rig(9);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 91);
    let mut b = client(&r, "device-b", &folder_b, 92);

    for i in 0..40 {
        folder_a
            .write(&format!("batch/f{i:02}.bin"), &content(20_000, i as u8 + 1), 1)
            .unwrap();
    }
    let up = a.sync_once().unwrap();
    assert_eq!(up.uploaded.len(), 40);
    let down = b.sync_once().unwrap();
    assert_eq!(down.downloaded.len(), 40);
    assert_eq!(folder_b.file_count(), 40);
}
