//! Tests of the multi-site shared-backing substrate and the per-site
//! profile behaviours the experiments rely on.

use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_cloud::CloudStore;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{
    build_multicloud, build_multicloud_shared, site_by_name, Provider, EC2_SITES,
};

#[test]
fn shared_backing_exposes_same_objects_at_every_site() {
    let sim = SimRuntime::new(1);
    let (sets, _) = build_multicloud_shared(&sim, &EC2_SITES);
    assert_eq!(sets.len(), EC2_SITES.len());
    // Upload through Virginia's Dropbox frontend.
    let virginia = &sets[0];
    virginia
        .get(unidrive_cloud::CloudId(0))
        .upload("shared/file", Bytes::from_static(b"payload"))
        .unwrap();
    // Every other site's Dropbox frontend sees it (read-after-write).
    for (i, set) in sets.iter().enumerate().skip(1) {
        let data = set
            .get(unidrive_cloud::CloudId(0))
            .download("shared/file")
            .unwrap_or_else(|e| panic!("site {i}: {e}"));
        assert_eq!(&data[..], b"payload");
    }
    // But NOT another provider's frontend (separate backings).
    assert!(sets[1]
        .get(unidrive_cloud::CloudId(1))
        .download("shared/file")
        .is_err());
}

#[test]
fn per_site_paths_have_different_speeds_to_one_backing() {
    let sim = SimRuntime::new(2);
    let fast_site = site_by_name("Virginia").unwrap();
    let slow_site = site_by_name("SaoPaulo").unwrap();
    let (sets, _) = build_multicloud_shared(&sim, &[fast_site, slow_site]);
    let data = Bytes::from(vec![0u8; 4_000_000]);
    // Upload the same bytes through both frontends of Dropbox and time
    // it (with a couple of retries: the profiles inject transient
    // failures).
    let timed_upload = |set: &unidrive_cloud::CloudSet, name: &str| {
        let t0 = sim.now();
        for attempt in 0..8 {
            if set
                .get(unidrive_cloud::CloudId(0))
                .upload(&format!("{name}{attempt}"), data.clone())
                .is_ok()
            {
                return sim.now() - t0;
            }
        }
        panic!("upload kept failing");
    };
    let fast = timed_upload(&sets[0], "a");
    let slow = timed_upload(&sets[1], "b");
    assert!(
        slow.as_secs_f64() > 1.5 * fast.as_secs_f64(),
        "SaoPaulo {slow:?} should be well slower than Virginia {fast:?}"
    );
}

#[test]
fn outage_on_one_frontend_does_not_kill_other_sites() {
    let sim = SimRuntime::new(3);
    let sites = [
        site_by_name("Virginia").unwrap(),
        site_by_name("Tokyo").unwrap(),
    ];
    let (sets, handles) = build_multicloud_shared(&sim, &sites);
    // Virginia's Dropbox path goes dark; Tokyo's stays up.
    handles[0][0].set_available(false);
    assert!(sets[0]
        .get(unidrive_cloud::CloudId(0))
        .upload("x", Bytes::new())
        .is_err());
    assert!(sets[1]
        .get(unidrive_cloud::CloudId(0))
        .upload("x", Bytes::new())
        .is_ok());
}

#[test]
fn single_site_builder_matches_provider_order() {
    let sim = SimRuntime::new(4);
    let (set, handles) = build_multicloud(&sim, site_by_name("Ireland").unwrap());
    assert_eq!(set.len(), Provider::ALL.len());
    for (i, p) in Provider::ALL.iter().enumerate() {
        assert_eq!(set.get(unidrive_cloud::CloudId(i)).name(), p.name());
        assert_eq!(handles[i].traffic().ok_requests, 0);
    }
}

#[test]
fn degraded_windows_only_affect_their_window() {
    let sim = SimRuntime::new(5);
    let cloud = unidrive_workload::build_cloud(
        &sim,
        site_by_name("Princeton").unwrap(),
        Provider::Dropbox,
    );
    cloud.set_degraded_windows(vec![(
        unidrive_sim::Time::from_secs(1000),
        unidrive_sim::Time::from_secs(2000),
    )]);
    // Before the window: mostly fine (1 % base).
    let mut early_fail = 0;
    for i in 0..50 {
        if cloud.upload(&format!("e{i}"), Bytes::from(vec![1u8; 1024])).is_err() {
            early_fail += 1;
        }
    }
    sim.sleep(Duration::from_secs(1500));
    let mut during_fail = 0;
    for i in 0..50 {
        if cloud.upload(&format!("d{i}"), Bytes::from(vec![1u8; 1024])).is_err() {
            during_fail += 1;
        }
    }
    assert!(
        during_fail > early_fail + 10,
        "degraded window must elevate failures: {early_fail} -> {during_fail}"
    );
}
