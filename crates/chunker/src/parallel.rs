//! Parallel cut-point discovery: the buffer is split into disjoint
//! slices, each worker collects the content-defined *candidate*
//! positions in its slice, and one cheap serial fold applies the
//! `(0.5 θ, 1.5 θ)` size contract over the merged list.
//!
//! ## Why the output is byte-identical to the serial scan
//!
//! A *candidate* is a position whose rolling fingerprint — an exact
//! function of only the fixed-width window ending there (48 bytes for
//! Rabin, 64 for gear) — matches the cut mask. Because the judgment
//! sees nothing but its own trailing window, the candidate set is a
//! pure function of the content: a worker that warms its hash up one
//! window before its slice computes bit-identical fingerprints to a
//! serial scan that rolled through from the start of the file. Slicing
//! therefore changes *who finds* each candidate, never *whether it
//! exists* — the union over any partition of `[min, len)` is the same
//! set, in the same (sorted) order, at any thread count.
//!
//! The size constraint is the only sequential part: whether a
//! candidate becomes a cut depends on where the previous cut landed.
//! That state machine ([`fold_candidates`] in `chunker.rs`) is shared
//! verbatim with the serial drivers and runs over the merged candidate
//! list in O(candidates) — candidates arrive about one per `0.5 θ`
//! bytes, so the fold is noise next to the scan. This is the
//! "resync at the first agreeing boundary" argument in closed form:
//! after any forced or chosen cut, the next cut is the first candidate
//! past the minimum-size region, and candidates don't move.

use unidrive_util::pool::WorkerPool;

use crate::chunker::fold_candidates;
use crate::gear::collect_matches;
use crate::rabin::RabinHash;
use crate::{ChunkerConfig, ChunkerKind};

/// Slices shorter than this are not worth a worker handoff; below
/// `2 × this`, the whole buffer goes serial.
const MIN_SLICE_BYTES: usize = 256 * 1024;

/// What the parallel driver did, for telemetry (`chunker.*` series).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Disjoint slices scanned (1 for a serial fallback).
    pub slices: usize,
    /// Candidate cut positions found across all slices. 0 when the
    /// serial fallback ran (the skip-ahead scans don't enumerate
    /// candidates they never visit).
    pub candidates: usize,
    /// Candidates discarded by the size-contract fold because they
    /// fell inside a minimum-size region — the "resync" work.
    pub skipped: usize,
}

/// [`cut_points`](crate::cut_points) with cut-point *discovery* fanned
/// out across `pool`: output is byte-identical to the serial scan at
/// any thread count (see the module docs for the argument).
///
/// # Examples
///
/// ```
/// use unidrive_chunker::{cut_points, cut_points_parallel, ChunkerConfig};
/// use unidrive_util::pool::WorkerPool;
///
/// let data: Vec<u8> = (0..4_000_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
/// let config = ChunkerConfig::gear(64 * 1024);
/// let serial = cut_points(&data, &config);
/// let parallel = cut_points_parallel(&data, &config, &WorkerPool::new(4));
/// assert_eq!(serial, parallel);
/// ```
pub fn cut_points_parallel(
    data: &[u8],
    config: &ChunkerConfig,
    pool: &WorkerPool,
) -> Vec<(usize, usize)> {
    cut_points_parallel_stats(data, config, pool).0
}

/// [`cut_points_parallel`] plus [`ChunkStats`] for telemetry.
pub fn cut_points_parallel_stats(
    data: &[u8],
    config: &ChunkerConfig,
    pool: &WorkerPool,
) -> (Vec<(usize, usize)>, ChunkStats) {
    let min = config.effective_min();
    // Serial fallback: one worker, or a buffer too small to amortize
    // the handoff (a single-segment file has no interior candidates at
    // all). The skip-ahead serial scans are also strictly faster per
    // byte scanned than full candidate collection, so this is the
    // right path for small inputs, not just a safe one.
    if pool.threads() == 1 || data.len() <= config.max_size() || data.len() < 2 * MIN_SLICE_BYTES {
        let cuts = crate::cut_points(data, config);
        let stats = ChunkStats {
            slices: 1,
            ..ChunkStats::default()
        };
        return (cuts, stats);
    }
    // Candidates can only matter from the first eligible position of
    // the first segment onward; carve [min, len) into slices. More
    // slices than workers smooths imbalance from uneven match density.
    let span = data.len() - min;
    let want = pool.threads() * 2;
    let slice_len = (span / want).max(MIN_SLICE_BYTES);
    let mut bounds = Vec::new();
    let mut lo = min;
    while lo < data.len() {
        let hi = (lo + slice_len).min(data.len());
        bounds.push((lo, hi));
        lo = hi;
    }
    let mask = config.kind_mask();
    let per_slice: Vec<Vec<usize>> = pool.par_map_indexed(&bounds, |_, &(lo, hi)| {
        let mut found = Vec::new();
        match config.kind {
            ChunkerKind::Gear => collect_matches(data, lo, hi, mask, &mut found),
            ChunkerKind::Rabin => collect_matches_rabin(data, lo, hi, config, &mut found),
        }
        found
    });
    let candidates: Vec<usize> = per_slice.concat();
    debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]));
    let (cuts, skipped) = fold_candidates(data.len(), config, &candidates);
    let stats = ChunkStats {
        slices: bounds.len(),
        candidates: candidates.len(),
        skipped,
    };
    (cuts, stats)
}

/// Appends every position `c` in `[lo, hi)` whose Rabin fingerprint
/// (window ending at `c`) matches. Requires `lo >= config.window` so
/// the warm-up window exists — guaranteed because slicing starts at
/// `effective_min() >= window`.
fn collect_matches_rabin(
    data: &[u8],
    lo: usize,
    hi: usize,
    config: &ChunkerConfig,
    out: &mut Vec<usize>,
) {
    let window = config.window;
    let mask = config.mask();
    debug_assert!(lo >= window && hi <= data.len());
    let mut hash = RabinHash::new(window);
    for &b in &data[lo - window..lo] {
        hash.push(b);
    }
    // Judge position c (window ending at c), then slide the window by
    // consuming data[c]. Zipped slices keep the loop bounds-check-free,
    // mirroring the serial scan's inner loop.
    let expiring = &data[lo - window..hi - window];
    let arriving = &data[lo..hi];
    for (i, (&old, &new)) in expiring.iter().zip(arriving).enumerate() {
        if hash.fingerprint() & mask == mask {
            out.push(lo + i);
        }
        hash.roll(old, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut_points;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn both_kinds(theta: usize) -> [ChunkerConfig; 2] {
        [ChunkerConfig::new(theta), ChunkerConfig::gear(theta)]
    }

    #[test]
    fn parallel_equals_serial_at_every_thread_count() {
        // The tentpole contract: byte-identical output at 1/2/8 threads
        // for both hash kinds, across sizes that exercise multi-slice
        // splits and the serial fallback.
        for config in both_kinds(8 * 1024) {
            for (len, seed) in [(900_000usize, 1u64), (2_500_000, 2), (100_000, 3)] {
                let data = pseudo_random(len, seed);
                let serial = cut_points(&data, &config);
                for threads in [1usize, 2, 8] {
                    let pool = WorkerPool::new(threads);
                    let parallel = cut_points_parallel(&data, &config, &pool);
                    assert_eq!(
                        parallel,
                        serial,
                        "kind={} len={len} threads={threads}",
                        config.kind.label()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_equals_serial_on_forced_cut_data() {
        // All-zero data has no candidates anywhere: every cut is forced
        // at max_size, the degenerate case where slice edges and forced
        // cuts interleave arbitrarily.
        for config in both_kinds(4 * 1024) {
            let data = vec![0u8; 1_200_000];
            let serial = cut_points(&data, &config);
            for threads in [2usize, 8] {
                let parallel = cut_points_parallel(&data, &config, &WorkerPool::new(threads));
                assert_eq!(parallel, serial, "kind={}", config.kind.label());
            }
        }
    }

    #[test]
    fn parallel_handles_edge_sizes() {
        for config in both_kinds(1024) {
            let pool = WorkerPool::new(4);
            assert!(cut_points_parallel(&[], &config, &pool).is_empty());
            for len in [1usize, 100, config.max_size(), config.max_size() + 1] {
                let data = pseudo_random(len, len as u64);
                assert_eq!(
                    cut_points_parallel(&data, &config, &pool),
                    cut_points(&data, &config),
                    "kind={} len={len}",
                    config.kind.label()
                );
            }
        }
    }

    #[test]
    fn rabin_candidate_scan_agrees_with_serial_walk() {
        // The Rabin collector judges exactly the positions a serial
        // roll-through would, wherever the slice starts.
        let config = ChunkerConfig::new(4 * 1024);
        let data = pseudo_random(300_000, 9);
        let window = config.window;
        let mask = config.mask();
        let mut reference = Vec::new();
        let mut hash = RabinHash::new(window);
        for &b in &data[..window] {
            hash.push(b);
        }
        for c in window..data.len() {
            if hash.fingerprint() & mask == mask {
                reference.push(c);
            }
            hash.roll(data[c - window], data[c]);
        }
        for lo in [window, 1000, 65_537] {
            let mut got = Vec::new();
            collect_matches_rabin(&data, lo, data.len(), &config, &mut got);
            let expect: Vec<usize> = reference.iter().copied().filter(|&c| c >= lo).collect();
            assert_eq!(got, expect, "lo={lo}");
        }
        assert!(!reference.is_empty(), "mask produced no matches");
    }

    #[test]
    fn stats_are_thread_count_invariant() {
        // Candidate and skip counts are content properties; only the
        // slice count may see the pool width.
        let config = ChunkerConfig::gear(8 * 1024);
        let data = pseudo_random(2_000_000, 17);
        let (_, s2) = cut_points_parallel_stats(&data, &config, &WorkerPool::new(2));
        let (_, s8) = cut_points_parallel_stats(&data, &config, &WorkerPool::new(8));
        assert!(s2.candidates > 0 && s2.skipped > 0, "{s2:?}");
        assert_eq!(s2.candidates, s8.candidates);
        assert_eq!(s2.skipped, s8.skipped);
    }
}
