//! The pluggable metadata plane: how a device coordinates reads and
//! commits of the shared [`SyncFolderImage`].
//!
//! UniDrive's paper design serializes every writer behind one quorum
//! lock over the whole image (the **lock** mode). The **oplog** mode
//! replaces that global serialization with per-device append-only
//! operation logs replicated to every cloud: writers append without
//! coordination, readers fold all visible ops in a total
//! `(lamport, device, seq)` order (see [`fold`](crate::fold)), and the
//! quorum lock survives only for base compaction. Both modes implement
//! [`MetaPlane`]; the sync client is written against the trait.

use crate::{SyncFolderImage, VersionStamp};
use unidrive_obs::SpanId;

/// Which metadata plane a client runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetaMode {
    /// Paper §5.2: quorum lock around every metadata commit (default).
    #[default]
    Lock,
    /// Append-only per-device op logs; lock only for compaction.
    Oplog,
}

impl MetaMode {
    /// Parses `"lock"` / `"oplog"` (as accepted by `--meta-mode`).
    pub fn parse(s: &str) -> Option<MetaMode> {
        match s {
            "lock" => Some(MetaMode::Lock),
            "oplog" => Some(MetaMode::Oplog),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetaMode::Lock => "lock",
            MetaMode::Oplog => "oplog",
        }
    }
}

impl std::fmt::Display for MetaMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from a metadata-plane operation.
///
/// The union of the failure shapes of both planes: lock acquisition
/// (lock mode), quorum reads and writes (both modes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneError {
    /// Could not win the quorum lock within the configured attempts.
    Contended {
        /// Rounds attempted.
        attempts: u32,
    },
    /// Fewer than a quorum of clouds are reachable at all.
    QuorumUnreachable {
        /// Clouds that answered.
        reachable: usize,
        /// Quorum size needed.
        quorum: usize,
    },
    /// Fewer clouds than a quorum acknowledged the write.
    QuorumWriteFailed {
        /// Clouds that stored the update.
        acked: usize,
        /// Quorum required.
        quorum: usize,
    },
    /// Metadata exists somewhere but no cloud serves a consistent,
    /// decryptable copy.
    Unreadable,
}

impl std::fmt::Display for PlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneError::Contended { attempts } => {
                write!(f, "failed to acquire quorum lock after {attempts} attempts")
            }
            PlaneError::QuorumUnreachable { reachable, quorum } => write!(
                f,
                "only {reachable} clouds reachable, quorum of {quorum} required"
            ),
            PlaneError::QuorumWriteFailed { acked, quorum } => {
                write!(f, "metadata write reached {acked} clouds, quorum is {quorum}")
            }
            PlaneError::Unreadable => write!(f, "no cloud serves a consistent metadata copy"),
        }
    }
}

impl std::error::Error for PlaneError {}

/// The merge callback [`MetaPlane::transact`] runs inside the
/// transaction: given the freshest remote image (`None` on a fresh
/// multi-cloud), returns the image + stamp to commit, or `None` to
/// abort cleanly.
pub type MergeFn<'a> =
    dyn FnMut(Option<&SyncFolderImage>) -> Option<(SyncFolderImage, VersionStamp)> + 'a;

/// A metadata coordination plane: polls for cloud updates and runs
/// commit transactions against the replicated [`SyncFolderImage`].
///
/// The commit API is transactional by construction: the plane performs
/// whatever coordination its mode requires (acquire the quorum lock,
/// or fold the op logs), hands the freshest remote image to the
/// caller's `build` closure, and publishes what the closure returns.
/// The closure runs *inside* the transaction, so a lock-mode plane
/// holds the lock across it and an oplog-mode plane derives the op
/// from exactly the folded state it read.
pub trait MetaPlane: Send {
    /// Which mode this plane implements.
    fn mode(&self) -> MetaMode;

    /// Cheap poll for a cloud update (Algorithm 1 lines 15–18).
    ///
    /// Returns `Some(image)` when the cloud holds a newer image than
    /// `current`, `None` when nothing moved (or nothing is reachable —
    /// polls never regress on partial visibility).
    ///
    /// # Errors
    ///
    /// [`PlaneError::Unreadable`] when an update is advertised but no
    /// consistent copy can be fetched.
    fn poll(
        &mut self,
        current: &SyncFolderImage,
        round: Option<SpanId>,
    ) -> Result<Option<SyncFolderImage>, PlaneError>;

    /// One commit transaction.
    ///
    /// The plane reads the freshest remote state and calls `build` with
    /// the remote image (`None` on a fresh multi-cloud). `build`
    /// returns the image to publish plus its version stamp, or `None`
    /// to abort the transaction cleanly. On success the plane returns
    /// the image the caller should adopt as its new synced state — in
    /// oplog mode this is the *folded* image (remote ops ∪ the new op),
    /// which may retain state the committed image dropped.
    ///
    /// # Errors
    ///
    /// [`PlaneError`] on lock, read or quorum-write failures. The
    /// caller's state is unchanged and the commit can be retried.
    fn transact(
        &mut self,
        current: &SyncFolderImage,
        round: Option<SpanId>,
        build: &mut MergeFn<'_>,
    ) -> Result<Option<SyncFolderImage>, PlaneError>;
}

impl std::fmt::Debug for dyn MetaPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaPlane")
            .field("mode", &self.mode())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_prints() {
        assert_eq!(MetaMode::parse("lock"), Some(MetaMode::Lock));
        assert_eq!(MetaMode::parse("oplog"), Some(MetaMode::Oplog));
        assert_eq!(MetaMode::parse("other"), None);
        assert_eq!(MetaMode::Lock.to_string(), "lock");
        assert_eq!(MetaMode::Oplog.to_string(), "oplog");
        assert_eq!(MetaMode::default(), MetaMode::Lock);
    }

    #[test]
    fn plane_errors_display() {
        let cases = [
            PlaneError::Contended { attempts: 3 },
            PlaneError::QuorumUnreachable { reachable: 1, quorum: 3 },
            PlaneError::QuorumWriteFailed { acked: 2, quorum: 3 },
            PlaneError::Unreadable,
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
