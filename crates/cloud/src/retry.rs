//! Retry policy for transient Web API failures.
//!
//! The measurement study (paper §3.2) found not every Web API request
//! succeeds — success rates between ~82 % (real-world trial) and ~99 %.
//! UniDrive retries transient failures with bounded exponential backoff;
//! anything else (outage, quota) is surfaced so the scheduler can fail
//! over to a different cloud.
//!
//! The entry point is the builder-style [`Retry`]: construct it with a
//! runtime and policy, optionally attach observability and span
//! causality, then [`run`](Retry::run) the operation.

use std::sync::Arc;
use std::time::Duration;

use unidrive_obs::{Event, Obs, SpanId};
use unidrive_sim::Runtime;

use crate::{CloudError, CloudStore};

/// Bounded exponential backoff policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Default policy: 4 attempts, 200 ms initial backoff doubling to at
    /// most 2 s.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(2),
        }
    }

    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff to sleep before attempt number `attempt` (1-based; attempt
    /// 1 has no backoff). Saturates at `max_backoff`: neither a huge
    /// attempt number nor an extreme `initial_backoff` can overflow.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        // The shift exponent is clamped so the factor fits a u32, and the
        // multiply is checked: overflow means "longer than any cap we
        // could have", so it collapses to max_backoff.
        let factor = 1u32 << (attempt - 2).min(16);
        self.initial_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |b| b.min(self.max_backoff))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// Builder-style retry loop: runs an operation under a [`RetryPolicy`],
/// sleeping on a [`Runtime`] between attempts, with optional
/// observability and span causality.
///
/// * [`obs`](Retry::obs) — each re-attempt increments `retry.attempts`,
///   records the backoff into the `retry.backoff_ns` histogram, and
///   traces an [`Event::RetryAttempt`] labeled with the operation label;
///   `retry.recovered` / `retry.exhausted` count how retried operations
///   ended.
/// * [`span`](Retry::span) — every wire attempt becomes a `wire.attempt`
///   span parented to the given span (e.g. the engine's per-block span),
///   rendered on the given display lane, carrying the operation label,
///   the 1-based attempt number, and the outcome.
///
/// Without `obs`, the loop is silent (a no-op [`Obs`] is used).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use unidrive_cloud::{CloudError, Retry, RetryPolicy};
/// use unidrive_sim::{RealRuntime, Runtime};
///
/// let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
/// let mut calls = 0;
/// let result: Result<u32, CloudError> = Retry::new(&rt, &RetryPolicy::new()).run(|| {
///     calls += 1;
///     if calls < 3 {
///         Err(CloudError::transient("hiccup"))
///     } else {
///         Ok(99)
///     }
/// });
/// assert_eq!(result.unwrap(), 99);
/// assert_eq!(calls, 3);
/// ```
#[must_use = "Retry does nothing until .run(op) is called"]
pub struct Retry<'a> {
    rt: &'a Arc<dyn Runtime>,
    policy: &'a RetryPolicy,
    obs: Option<&'a Obs>,
    label: &'a str,
    parent: Option<SpanId>,
    track: u32,
}

impl std::fmt::Debug for Retry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retry")
            .field("policy", self.policy)
            .field("label", &self.label)
            .field("observed", &self.obs.is_some())
            .finish()
    }
}

impl<'a> Retry<'a> {
    /// Starts a retry builder over `rt` with `policy`.
    pub fn new(rt: &'a Arc<dyn Runtime>, policy: &'a RetryPolicy) -> Retry<'a> {
        Retry {
            rt,
            policy,
            obs: None,
            label: "op",
            parent: None,
            track: 0,
        }
    }

    /// Attaches observability: retry counters, backoff histogram, and
    /// [`Event::RetryAttempt`] events labeled `label`.
    pub fn obs(mut self, obs: &'a Obs, label: &'a str) -> Retry<'a> {
        self.obs = Some(obs);
        self.label = label;
        self
    }

    /// Attaches span causality: each attempt becomes a `wire.attempt`
    /// span parented to `parent` on display lane `track`. Only effective
    /// together with [`obs`](Retry::obs).
    pub fn span(mut self, parent: Option<SpanId>, track: u32) -> Retry<'a> {
        self.parent = parent;
        self.track = track;
        self
    }

    /// Runs `op`, retrying retryable [`CloudError`]s per the policy.
    ///
    /// # Errors
    ///
    /// Returns the last error once attempts are exhausted, or immediately
    /// for non-retryable errors.
    pub fn run<T>(self, mut op: impl FnMut() -> Result<T, CloudError>) -> Result<T, CloudError> {
        let noop = Obs::noop();
        let obs = self.obs.unwrap_or(&noop);
        let mut attempt = 1;
        loop {
            let result = {
                let mut span = obs.span("wire.attempt", self.parent);
                span.set_track(self.track);
                span.attr_str("op", self.label);
                span.attr_u64("attempt", attempt as u64);
                let result = op();
                span.attr_bool("ok", result.is_ok());
                result
            };
            match result {
                Ok(v) => {
                    if attempt > 1 {
                        obs.inc("retry.recovered");
                    }
                    return Ok(v);
                }
                Err(e) if e.is_retryable() && attempt < self.policy.max_attempts => {
                    attempt += 1;
                    let backoff = self.policy.backoff_before(attempt);
                    obs.inc("retry.attempts");
                    obs.observe("retry.backoff_ns", backoff.as_nanos() as u64);
                    obs.event(|| Event::RetryAttempt {
                        op: self.label.to_owned(),
                        attempt,
                        backoff_ns: backoff.as_nanos() as u64,
                    });
                    if backoff > Duration::ZERO {
                        self.rt.sleep(backoff);
                    }
                }
                Err(e) => {
                    if attempt > 1 {
                        obs.inc("retry.exhausted");
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// A [`CloudStore`] decorator running every operation through
/// [`Retry`] — the store-level home of the retry loop for callers that
/// compose a whole stack up front (see
/// [`CloudBuilder`](crate::CloudBuilder)) instead of wrapping each
/// call site.
///
/// Each op retries per the policy with the op name as the retry label,
/// so `retry.attempts`/`retry.recovered`/`retry.exhausted` counters
/// and [`Event::RetryAttempt`] events attribute correctly. `append` is
/// delegated to the inner store inside one retry loop (a retried
/// composed append re-reads, so a torn first attempt cannot embed a
/// stale tail).
pub struct RetryCloud {
    inner: Arc<dyn CloudStore>,
    rt: Arc<dyn Runtime>,
    policy: RetryPolicy,
    obs: Obs,
}

impl std::fmt::Debug for RetryCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryCloud")
            .field("inner", &self.inner.name())
            .field("policy", &self.policy)
            .finish()
    }
}

impl RetryCloud {
    /// Wraps `inner`, retrying per `policy`. Pass [`Obs::noop`] for a
    /// silent loop.
    pub fn new(
        inner: Arc<dyn CloudStore>,
        rt: Arc<dyn Runtime>,
        policy: RetryPolicy,
        obs: Obs,
    ) -> RetryCloud {
        RetryCloud {
            inner,
            rt,
            policy,
            obs,
        }
    }

    fn retry<T>(
        &self,
        label: &str,
        op: impl FnMut() -> Result<T, CloudError>,
    ) -> Result<T, CloudError> {
        Retry::new(&self.rt, &self.policy)
            .obs(&self.obs, label)
            .run(op)
    }
}

impl crate::CloudStore for RetryCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: unidrive_util::bytes::Bytes) -> Result<(), CloudError> {
        self.retry("upload", || {
            self.inner
                .upload(path, data.clone())
                .map_err(|e| e.with_op_context(crate::CloudOp::Upload, path))
        })
    }

    fn download(&self, path: &str) -> Result<unidrive_util::bytes::Bytes, CloudError> {
        self.retry("download", || {
            self.inner
                .download(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::Download, path))
        })
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.retry("create_dir", || {
            self.inner
                .create_dir(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::CreateDir, path))
        })
    }

    fn list(&self, path: &str) -> Result<Vec<crate::ObjectInfo>, CloudError> {
        self.retry("list", || {
            self.inner
                .list(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::List, path))
        })
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.retry("delete", || {
            self.inner
                .delete(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::Delete, path))
        })
    }

    fn append(&self, path: &str, data: unidrive_util::bytes::Bytes) -> Result<(), CloudError> {
        self.retry("append", || self.inner.append(path, data.clone()))
    }

    fn caps(&self) -> crate::CloudCaps {
        // Retrying is semantically transparent and `append` delegates,
        // so capabilities pass straight through.
        self.inner.caps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_sim::{RealRuntime, SimRuntime};

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(500),
        };
        assert_eq!(p.backoff_before(1), Duration::ZERO);
        assert_eq!(p.backoff_before(2), Duration::from_millis(100));
        assert_eq!(p.backoff_before(3), Duration::from_millis(200));
        assert_eq!(p.backoff_before(4), Duration::from_millis(400));
        assert_eq!(p.backoff_before(5), Duration::from_millis(500));
        assert_eq!(p.backoff_before(9), Duration::from_millis(500));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::MAX,
            max_backoff: Duration::from_secs(5),
        };
        // Duration::MAX * 2 would panic without the checked multiply.
        assert_eq!(p.backoff_before(3), Duration::from_secs(5));
        // Huge attempt numbers clamp the shift exponent (no u32 overflow).
        assert_eq!(p.backoff_before(u32::MAX), Duration::from_secs(5));
        let q = RetryPolicy {
            max_attempts: 100,
            initial_backoff: Duration::from_secs(u64::MAX / 2),
            max_backoff: Duration::MAX,
        };
        // Overflowing growth collapses to the cap rather than wrapping.
        assert_eq!(q.backoff_before(50), Duration::MAX);
    }

    #[test]
    fn observed_retries_count_attempts_and_outcomes() {
        use unidrive_obs::Registry;
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let obs = Obs::with_registry(Registry::new());
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        let mut calls = 0;
        let r = Retry::new(&rt, &policy).obs(&obs, "upload").run(|| {
            calls += 1;
            if calls < 3 {
                Err(CloudError::transient("hiccup"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(r.unwrap(), 7);
        let _: Result<(), _> = Retry::new(&rt, &policy)
            .obs(&obs, "upload")
            .run(|| Err(CloudError::transient("always")));
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("retry.attempts"), 4); // 2 + 2 re-attempts
        assert_eq!(snap.counter("retry.recovered"), 1);
        assert_eq!(snap.counter("retry.exhausted"), 1);
        assert_eq!(snap.event_count("RetryAttempt"), 4);
    }

    #[test]
    fn traced_retries_emit_parented_attempt_spans() {
        use unidrive_obs::{FieldValue, Registry};
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let obs = Obs::with_registry(Registry::new());
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        let parent = obs.span("engine.block", None);
        let parent_id = parent.id().unwrap();
        let mut calls = 0;
        let r = Retry::new(&rt, &policy)
            .obs(&obs, "upload")
            .span(Some(parent_id), 4)
            .run(|| {
                calls += 1;
                if calls < 2 {
                    Err(CloudError::transient("hiccup"))
                } else {
                    Ok(())
                }
            });
        r.unwrap();
        parent.end();
        let snap = obs.snapshot().unwrap();
        let attempts: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "wire.attempt")
            .collect();
        assert_eq!(attempts.len(), 2);
        for (i, s) in attempts.iter().enumerate() {
            assert_eq!(s.parent, parent_id.0);
            assert_eq!(s.track, 4);
            assert_eq!(s.attr("attempt"), Some(&FieldValue::U(i as u64 + 1)));
        }
        assert_eq!(attempts[0].attr("ok"), Some(&FieldValue::B(false)));
        assert_eq!(attempts[1].attr("ok"), Some(&FieldValue::B(true)));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        let mut calls = 0;
        let r: Result<(), _> = Retry::new(&rt, &policy).run(|| {
            calls += 1;
            Err(CloudError::transient("always"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let mut calls = 0;
        let r: Result<(), _> = Retry::new(&rt, &RetryPolicy::new()).run(|| {
            calls += 1;
            Err(CloudError::unavailable("c"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_consumes_virtual_time() {
        let sim = SimRuntime::new(1);
        let rt = sim.clone().as_runtime();
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(10),
        };
        let t0 = sim.now();
        let _: Result<(), _> =
            Retry::new(&rt, &policy).run(|| Err(CloudError::transient("x")));
        // Backoffs: 1 s + 2 s = 3 s.
        assert_eq!((sim.now() - t0).as_secs_f64(), 3.0);
    }
}
