//! Criterion benchmarks of the schedulers under virtual time: wall-clock
//! cost of simulating uploads/downloads (the harness's own efficiency),
//! plus the end-to-end lock round-trip.

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use unidrive_cloud::{CloudSet, CloudStore, MemCloud, SimCloud, SimCloudConfig};
use unidrive_core::{DataPlane, DataPlaneConfig, LockConfig, QuorumLock, UploadRequest};
use unidrive_erasure::RedundancyConfig;
use unidrive_sim::{RealRuntime, Runtime, SimRng, SimRuntime};
use unidrive_workload::random_bytes;

fn bench_sim_upload(c: &mut Criterion) {
    let mut c = c.benchmark_group("scheduler");
    c.sample_size(10);
    c.bench_function("sim_upload_4mb_5_clouds", |b| {
        b.iter(|| {
            let sim = SimRuntime::new(1);
            let clouds = CloudSet::new(
                (0..5)
                    .map(|i| {
                        Arc::new(SimCloud::new(
                            &sim,
                            format!("c{i}"),
                            SimCloudConfig::steady(1e6 * (i + 1) as f64, 2e7),
                        )) as Arc<dyn CloudStore>
                    })
                    .collect(),
            );
            let plane = DataPlane::new(
                sim.clone().as_runtime(),
                clouds,
                DataPlaneConfig::with_params(
                    RedundancyConfig::paper_default(),
                    1024 * 1024,
                ),
            );
            let (report, _) = plane.upload_files(
                vec![UploadRequest {
                    path: "bench".into(),
                    data: random_bytes(4 * 1024 * 1024, 9),
                }],
                &HashSet::new(),
            );
            assert!(report.all_available());
            report.blocks.len()
        });
    });
    c.finish();
}

fn bench_lock_round_trip(c: &mut Criterion) {
    c.bench_function("quorum_lock_acquire_release_5_mem_clouds", |b| {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let clouds = CloudSet::new(
            (0..5)
                .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
                .collect(),
        );
        let lock = QuorumLock::new(
            rt,
            clouds,
            "bench-device",
            LockConfig::default(),
            SimRng::seed_from_u64(3),
        );
        b.iter(|| {
            let guard = lock.acquire().expect("uncontended");
            guard.release();
        });
    });
}

criterion_group!(benches, bench_sim_upload, bench_lock_round_trip);
criterion_main!(benches);
