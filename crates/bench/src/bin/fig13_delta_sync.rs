//! **Figure 13** — effectiveness of Delta-sync (§7.2): syncing
//! 1024 × 100 KB files one after another, comparing the gross metadata
//! size at the sender against the metadata traffic actually transferred
//! after Delta-sync (base + delta split, λ compaction).
//!
//! Shape targets: metadata size grows linearly with the number of
//! files; the transferred traffic is ~13× smaller, with sparse peaks
//! where the delta is merged into a new base.

use unidrive_crypto::Sha1;
use unidrive_meta::{DeltaLog, DeltaRecord, SegmentId, Snapshot, SyncFolderImage, VersionStamp};
use unidrive_workload::{Summary, TextTable};

fn main() {
    let files = 1024usize;
    let file_size = 100 * 1024u64;
    let ratio = 0.25;
    let floor = 10 * 1024;

    let mut image = SyncFolderImage::new();
    let mut delta = DeltaLog::new(VersionStamp::default());
    let mut base_size = image.encode().len();

    let mut gross_sizes = Vec::new();
    let mut traffic = Vec::new();
    let mut compactions = Vec::new();

    for i in 0..files {
        let seg = SegmentId(Sha1::digest(format!("file-{i}").as_bytes()));
        let stamp = VersionStamp {
            device: "sender".into(),
            counter: i as u64 + 1,
            timestamp_ns: i as u64,
        };
        let records = vec![
            DeltaRecord::EnsureSegment { id: seg, len: file_size },
            DeltaRecord::AddBlock {
                id: seg,
                block: unidrive_meta::BlockRef {
                    index: (i % 5) as u16,
                    cloud: (i % 5) as u16,
                },
            },
            DeltaRecord::UpsertFile {
                path: format!("trial/file-{i:04}.dat"),
                snapshot: Snapshot {
                    mtime_ns: i as u64,
                    size: file_size,
                    segments: vec![seg],
                },
            },
        ];
        image.ensure_segment(seg, file_size);
        image.upsert_file(
            &format!("trial/file-{i:04}.dat"),
            Snapshot {
                mtime_ns: i as u64,
                size: file_size,
                segments: vec![seg],
            },
        );
        image.version = stamp.clone();
        delta.append(records, stamp.clone());

        let gross = image.encode().len();
        gross_sizes.push(gross as f64);
        if delta.should_compact(base_size, ratio, floor) {
            // The lock holder merges delta into a new base and uploads
            // the base: that is the traffic spike.
            base_size = gross;
            traffic.push(gross as f64);
            compactions.push(i);
            delta = DeltaLog::new(stamp);
        } else {
            traffic.push(delta.encoded_len() as f64);
        }
    }

    println!("Figure 13: metadata size vs transferred metadata traffic, 1024 x 100 KB updates\n");
    let mut table = TextTable::new(&["update #", "gross metadata KB", "transferred KB"]);
    for &i in &[0usize, 63, 127, 255, 511, 767, 1023] {
        table.row(vec![
            format!("{i}"),
            format!("{:.1}", gross_sizes[i] / 1024.0),
            format!("{:.1}", traffic[i] / 1024.0),
        ]);
    }
    println!("{}", table.render());

    let gross = Summary::of(&gross_sizes).expect("samples");
    let sent = Summary::of(&traffic).expect("samples");
    println!(
        "mean gross metadata {:.1} KB vs mean transferred {:.1} KB: {:.1}x reduction \
         (paper: 74.7 KB -> 5.7 KB, 13.1x)",
        gross.mean / 1024.0,
        sent.mean / 1024.0,
        gross.mean / sent.mean
    );
    println!(
        "{} base-merge peaks over {files} updates (paper: sparse peaks when delta merges)",
        compactions.len()
    );
    // Linearity check: size at the end ~= 2x size at the middle.
    let linearity = gross_sizes[1023] / gross_sizes[511];
    println!("gross size growth 512->1024 files: {linearity:.2}x (paper: linear, i.e. ~2x)");
}
