//! Network profiles of the five clouds as seen from the measurement and
//! evaluation sites.
//!
//! Calibrated to reproduce the *shape* of the paper's §3.2 measurement
//! study (not its absolute numbers, which depended on 2013-era paths):
//!
//! * large spatial disparity per cloud and no global winner (Fig. 1);
//! * average-speed disparity across clouds of up to ~60× (§1);
//! * heavy temporal fluctuation — max/min within a day up to ~17×
//!   (Fig. 3) — via lognormal epoch multipliers plus deep fades;
//! * US clouds effectively unusable from China sites and vice versa;
//! * success rates ≈99 % US↔US, ≈90 % from China, ≈95 % for BaiduPCS,
//!   highly variable for DBank, with failures rising with file size
//!   (Fig. 4, Table 1).

use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{CloudSet, CloudStore, FailureProfile, SimCloud, SimCloudConfig};
use unidrive_sim::{LinkProfile, SimRuntime, Time};

/// The five CCS providers of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provider {
    /// Dropbox (hosted in two US data centers).
    Dropbox,
    /// Microsoft OneDrive (globally distributed DCs).
    OneDrive,
    /// Google Drive (edge POPs).
    GoogleDrive,
    /// Baidu PCS (geo-distributed within China).
    BaiduPcs,
    /// Huawei DBank (China, highly variable abroad).
    DBank,
}

impl Provider {
    /// All five, in the paper's order.
    pub const ALL: [Provider; 5] = [
        Provider::Dropbox,
        Provider::OneDrive,
        Provider::GoogleDrive,
        Provider::BaiduPcs,
        Provider::DBank,
    ];

    /// The three US providers (used in Table 1 / Fig. 3).
    pub const US: [Provider; 3] = [
        Provider::Dropbox,
        Provider::OneDrive,
        Provider::GoogleDrive,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Provider::Dropbox => "Dropbox",
            Provider::OneDrive => "OneDrive",
            Provider::GoogleDrive => "GoogleDrive",
            Provider::BaiduPcs => "BaiduPCS",
            Provider::DBank => "DBank",
        }
    }
}

/// Coarse geography that drives cloud affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Mainland China.
    China,
    /// Asia outside mainland China.
    Asia,
    /// Oceania.
    Oceania,
}

/// A measurement or evaluation site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Site {
    /// Human-readable name.
    pub name: &'static str,
    /// Region for affinity lookups.
    pub region: Region,
    /// Deterministic per-site rate multiplier (last-mile quality).
    pub local_factor: f64,
}

/// The 13 PlanetLab-style measurement sites (§3.2: 10 countries across
/// 5 continents).
pub const PLANETLAB_SITES: [Site; 13] = [
    Site { name: "Princeton", region: Region::NorthAmerica, local_factor: 1.3 },
    Site { name: "LosAngeles", region: Region::NorthAmerica, local_factor: 0.8 },
    Site { name: "Toronto", region: Region::NorthAmerica, local_factor: 1.1 },
    Site { name: "SaoPaulo", region: Region::SouthAmerica, local_factor: 0.9 },
    Site { name: "London", region: Region::Europe, local_factor: 1.2 },
    Site { name: "Frankfurt", region: Region::Europe, local_factor: 1.25 },
    Site { name: "Moscow", region: Region::Europe, local_factor: 0.7 },
    Site { name: "Beijing", region: Region::China, local_factor: 1.0 },
    Site { name: "Shanghai", region: Region::China, local_factor: 1.1 },
    Site { name: "Singapore", region: Region::Asia, local_factor: 1.2 },
    Site { name: "Tokyo", region: Region::Asia, local_factor: 1.3 },
    Site { name: "Mumbai", region: Region::Asia, local_factor: 0.6 },
    Site { name: "Sydney", region: Region::Oceania, local_factor: 1.0 },
];

/// The 7 EC2 evaluation sites (§7: 6 countries across 5 continents).
pub const EC2_SITES: [Site; 7] = [
    Site { name: "Virginia", region: Region::NorthAmerica, local_factor: 1.25 },
    Site { name: "Oregon", region: Region::NorthAmerica, local_factor: 1.15 },
    Site { name: "SaoPaulo", region: Region::SouthAmerica, local_factor: 0.85 },
    Site { name: "Ireland", region: Region::Europe, local_factor: 1.2 },
    Site { name: "Singapore", region: Region::Asia, local_factor: 1.1 },
    Site { name: "Tokyo", region: Region::Asia, local_factor: 1.25 },
    Site { name: "Sydney", region: Region::Oceania, local_factor: 0.95 },
];

/// Looks up a site by name in both site lists.
pub fn site_by_name(name: &str) -> Option<Site> {
    PLANETLAB_SITES
        .iter()
        .chain(EC2_SITES.iter())
        .find(|s| s.name == name)
        .copied()
}

/// Base single-connection **upload** rate in bytes/second for
/// `(provider, region)`; download is derived from it.
fn base_up_rate(provider: Provider, region: Region) -> f64 {
    use Provider::*;
    use Region::*;
    let mbps = match (provider, region) {
        (Dropbox, NorthAmerica) => 1.50,
        (Dropbox, SouthAmerica) => 0.50,
        (Dropbox, Europe) => 1.00,
        (Dropbox, China) => 0.030, // effectively blocked
        (Dropbox, Asia) => 0.60,
        (Dropbox, Oceania) => 0.50,

        (OneDrive, NorthAmerica) => 1.00,
        (OneDrive, SouthAmerica) => 0.60,
        (OneDrive, Europe) => 1.10,
        (OneDrive, China) => 0.15,
        (OneDrive, Asia) => 0.90,
        (OneDrive, Oceania) => 0.70,

        (GoogleDrive, NorthAmerica) => 1.20,
        (GoogleDrive, SouthAmerica) => 0.70,
        (GoogleDrive, Europe) => 1.30,
        (GoogleDrive, China) => 0.025, // effectively blocked
        (GoogleDrive, Asia) => 1.00,
        (GoogleDrive, Oceania) => 0.80,

        (BaiduPcs, NorthAmerica) => 0.08,
        (BaiduPcs, SouthAmerica) => 0.025,
        (BaiduPcs, Europe) => 0.06,
        (BaiduPcs, China) => 1.20,
        (BaiduPcs, Asia) => 0.30,
        (BaiduPcs, Oceania) => 0.05,

        (DBank, NorthAmerica) => 0.06,
        (DBank, SouthAmerica) => 0.03,
        (DBank, Europe) => 0.05,
        (DBank, China) => 0.80,
        (DBank, Asia) => 0.20,
        (DBank, Oceania) => 0.04,
    };
    mbps * 1e6
}

/// Temporal fluctuation parameters per provider: `(sigma, fade_prob)`.
/// DBank fluctuates the most (§3.2, "much larger fluctuation").
fn fluctuation(provider: Provider) -> (f64, f64) {
    match provider {
        Provider::Dropbox => (0.55, 0.035),
        Provider::OneDrive => (0.60, 0.040),
        Provider::GoogleDrive => (0.50, 0.030),
        Provider::BaiduPcs => (0.65, 0.045),
        Provider::DBank => (0.90, 0.080),
    }
}

/// Transient failure model per `(provider, region)` (§3.2 "Service
/// Availability" and Fig. 4).
fn failure_profile(provider: Provider, region: Region) -> FailureProfile {
    use Provider::*;
    use Region::*;
    let us_cloud = matches!(provider, Dropbox | OneDrive | GoogleDrive);
    let base = match (us_cloud, region) {
        (true, NorthAmerica) | (true, Europe) | (true, Oceania) => 0.010,
        (true, SouthAmerica) | (true, Asia) => 0.020,
        (true, China) => 0.100,
        (false, China) => 0.015,
        (false, Asia) => 0.050,
        (false, _) => {
            if provider == BaiduPcs {
                0.050
            } else {
                0.120 // DBank abroad: much larger fluctuation
            }
        }
    };
    FailureProfile {
        base,
        per_mb: base * 0.4,
        max: (base * 6.0).min(0.6),
        degraded: 0.55,
    }
}

/// Deterministic per-(site, provider) jitter in `[lo, hi]` (FNV-1a).
fn pair_jitter(site: Site, provider: Provider, lo: f64, hi: f64) -> f64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in site.name.bytes().chain([provider as u8]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    lo + (hi - lo) * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

/// Nominal `(up, down)` link rates in bytes/second for `(site,
/// provider)` — the same base rates [`cloud_config`] builds its
/// [`LinkProfile`]s from, exposed for analytic consumers (the fleet
/// simulator computes transfer times from these without constructing
/// a `SimCloud` per device).
pub fn nominal_rates(site: Site, provider: Provider) -> (f64, f64) {
    let up = base_up_rate(provider, site.region) * site.local_factor;
    let down = up * 2.2 * pair_jitter(site, provider, 0.4, 2.6);
    (up, down)
}

/// Full simulated-cloud configuration for `(site, provider)`.
pub fn cloud_config(site: Site, provider: Provider) -> SimCloudConfig {
    // Downlinks are faster on average but follow different paths than
    // uplinks, so the paper finds up/down only weakly correlated (~0.4);
    // the per-pair jitter inside `nominal_rates` models the asymmetric
    // routes.
    let (up_rate, down_rate) = nominal_rates(site, provider);
    let (sigma, fade_prob) = fluctuation(provider);
    let mk = |rate: f64| {
        LinkProfile::new(rate, rate * 4.0)
            .with_fluctuation(sigma, fade_prob)
            .with_epoch(Duration::from_secs(300))
            .with_latency(Duration::from_millis(120), Duration::from_millis(80))
    };
    SimCloudConfig {
        up: mk(up_rate),
        down: mk(down_rate),
        failure: failure_profile(provider, site.region),
        quota_bytes: None,
        request_overhead_bytes: 600,
    }
}

/// Builds the five-provider multi-cloud as seen from `site`.
///
/// Returns the [`CloudSet`] (provider order matches [`Provider::ALL`])
/// and the concrete handles for outage injection and traffic accounting.
pub fn build_multicloud(sim: &Arc<SimRuntime>, site: Site) -> (CloudSet, Vec<Arc<SimCloud>>) {
    let mut handles = Vec::new();
    let members: Vec<Arc<dyn CloudStore>> = Provider::ALL
        .iter()
        .map(|&p| {
            let c = Arc::new(SimCloud::new(sim, p.name(), cloud_config(site, p)));
            handles.push(Arc::clone(&c));
            c as Arc<dyn CloudStore>
        })
        .collect();
    (CloudSet::new(members), handles)
}

/// Builds the five-provider multi-cloud frontends for *several* sites
/// over shared backing stores: `sets[i]` is the cloud set as seen from
/// `sites[i]`, but all sites observe the same stored objects. This is
/// the substrate for the multi-device sync experiments (Fig. 11-12).
pub fn build_multicloud_shared(
    sim: &Arc<SimRuntime>,
    sites: &[Site],
) -> (Vec<CloudSet>, Vec<Vec<Arc<SimCloud>>>) {
    let backings: Vec<Arc<unidrive_cloud::MemCloud>> = Provider::ALL
        .iter()
        .map(|p| Arc::new(unidrive_cloud::MemCloud::new(p.name())))
        .collect();
    let mut sets = Vec::new();
    let mut handles_per_site = Vec::new();
    for &site in sites {
        let mut handles = Vec::new();
        let members: Vec<Arc<dyn CloudStore>> = Provider::ALL
            .iter()
            .zip(&backings)
            .map(|(&p, backing)| {
                let c = Arc::new(SimCloud::with_backing(
                    sim,
                    p.name(),
                    cloud_config(site, p),
                    Arc::clone(backing),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        sets.push(CloudSet::new(members));
        handles_per_site.push(handles);
    }
    (sets, handles_per_site)
}

/// Builds a single provider's cloud as seen from `site`.
pub fn build_cloud(sim: &Arc<SimRuntime>, site: Site, provider: Provider) -> Arc<SimCloud> {
    Arc::new(SimCloud::new(
        sim,
        provider.name(),
        cloud_config(site, provider),
    ))
}

/// Generates **disjoint** degraded windows for the five providers over
/// `horizon`: at any moment at most one provider is degraded, which is
/// what makes their failure series *negatively* correlated (Table 1 —
/// "different CCSs rarely experience outages at the same time").
///
/// `duty` is the fraction of time each provider spends degraded.
pub fn disjoint_degraded_windows(
    horizon: Duration,
    providers: usize,
    duty: f64,
    seed: u64,
) -> Vec<Vec<(Time, Time)>> {
    let mut rng = unidrive_sim::SimRng::seed_from_u64(seed);
    let mut windows = vec![Vec::new(); providers];
    let slot = Duration::from_secs(1800); // half-hour rotation slots
    let slots = (horizon.as_secs() / slot.as_secs()).max(1);
    for s in 0..slots {
        // Each slot, at most one provider is degraded.
        if rng.next_f64() < duty * providers as f64 {
            let victim = rng.below(providers as u64) as usize;
            let start = Time::from_nanos(s * slot.as_nanos() as u64);
            let end = start + slot;
            windows[victim].push((start, end));
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_tables_have_expected_shape() {
        assert_eq!(PLANETLAB_SITES.len(), 13);
        assert_eq!(EC2_SITES.len(), 7);
        assert!(site_by_name("Princeton").is_some());
        assert!(site_by_name("Virginia").is_some());
        assert!(site_by_name("Atlantis").is_none());
    }

    #[test]
    fn us_clouds_fast_at_home_slow_in_china() {
        let princeton = site_by_name("Princeton").unwrap();
        let beijing = site_by_name("Beijing").unwrap();
        for p in Provider::US {
            let home = base_up_rate(p, princeton.region);
            let away = base_up_rate(p, beijing.region);
            assert!(home / away > 5.0, "{}: home {home} away {away}", p.name());
        }
    }

    #[test]
    fn china_clouds_show_inverse_affinity() {
        assert!(
            base_up_rate(Provider::BaiduPcs, Region::China)
                > 10.0 * base_up_rate(Provider::BaiduPcs, Region::NorthAmerica)
        );
    }

    #[test]
    fn cross_cloud_disparity_reaches_tens() {
        // §1: up to ~60x average upload-speed disparity across clouds.
        let mut rates = Vec::new();
        for p in Provider::ALL {
            for s in PLANETLAB_SITES {
                rates.push(base_up_rate(p, s.region) * s.local_factor);
            }
        }
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 40.0, "disparity {}", max / min);
    }

    #[test]
    fn no_global_winner_across_sites() {
        // Fig. 1: some clouds win at some locations and lose at others.
        let best_at = |site: Site| {
            Provider::ALL
                .iter()
                .max_by(|a, b| {
                    let ra = base_up_rate(**a, site.region);
                    let rb = base_up_rate(**b, site.region);
                    ra.partial_cmp(&rb).unwrap()
                })
                .copied()
                .unwrap()
        };
        let winners: std::collections::HashSet<_> = PLANETLAB_SITES
            .iter()
            .map(|&s| best_at(s))
            .collect();
        assert!(winners.len() >= 2, "one cloud wins everywhere");
    }

    #[test]
    fn failure_rates_follow_the_study() {
        let na = failure_profile(Provider::Dropbox, Region::NorthAmerica);
        let cn = failure_profile(Provider::Dropbox, Region::China);
        assert!(cn.base > 5.0 * na.base);
        let baidu = failure_profile(Provider::BaiduPcs, Region::Europe);
        assert!((0.03..0.08).contains(&baidu.base));
        let dbank = failure_profile(Provider::DBank, Region::Europe);
        assert!(dbank.base > baidu.base, "DBank abroad flakier than Baidu");
    }

    #[test]
    fn degraded_windows_are_disjoint_across_providers() {
        let windows =
            disjoint_degraded_windows(Duration::from_secs(86_400 * 7), 5, 0.05, 42);
        let mut all: Vec<(u64, u64, usize)> = Vec::new();
        for (p, w) in windows.iter().enumerate() {
            for &(s, e) in w {
                all.push((s.as_nanos(), e.as_nanos(), p));
            }
        }
        all.sort();
        for pair in all.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "windows overlap: {pair:?}"
            );
        }
        // And some windows exist at all.
        assert!(!all.is_empty());
    }

    #[test]
    fn multicloud_builder_wires_five_providers() {
        let sim = unidrive_sim::SimRuntime::new(1);
        let (set, handles) = build_multicloud(&sim, site_by_name("Virginia").unwrap());
        assert_eq!(set.len(), 5);
        assert_eq!(handles.len(), 5);
        assert_eq!(set.get(unidrive_cloud::CloudId(0)).name(), "Dropbox");
        assert_eq!(set.get(unidrive_cloud::CloudId(4)).name(), "DBank");
    }
}
