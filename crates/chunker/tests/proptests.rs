//! Randomized property tests of the content-defined chunker: the
//! invariants UniDrive's deduplication and update-traffic claims rest
//! on, run against **both** rolling hashes ([`ChunkerKind::Rabin`] and
//! [`ChunkerKind::Gear`]) plus the serial ≡ parallel cut-point
//! equivalence contract. Driven by the workspace's deterministic
//! `SimRng` (seeded, so failures reproduce exactly) instead of an
//! external property-testing crate.

use unidrive_chunker::{
    cut_points, cut_points_parallel, segment_bytes, ChunkerConfig, ChunkerKind,
};
use unidrive_sim::SimRng;
use unidrive_util::pool::WorkerPool;

const KINDS: [ChunkerKind; 2] = [ChunkerKind::Rabin, ChunkerKind::Gear];

fn config_of(kind: ChunkerKind) -> ChunkerConfig {
    ChunkerConfig::new(4096).with_kind(kind)
}

fn random_vec(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Segments tile the input exactly: contiguous, complete, in order.
#[test]
fn segments_tile_input() {
    for kind in KINDS {
        let mut rng = SimRng::seed_from_u64(0xC401);
        for _ in 0..64 {
            let data = random_vec(&mut rng, 60_000);
            let segs = segment_bytes(&data, &config_of(kind));
            let mut pos = 0usize;
            for s in &segs {
                assert_eq!(s.offset, pos, "kind={}", kind.label());
                pos += s.len;
            }
            assert_eq!(pos, data.len(), "kind={}", kind.label());
        }
    }
}

/// All segments except the final one respect the (0.5θ, 1.5θ] size
/// bounds; the final one only the upper bound.
#[test]
fn segment_sizes_bounded() {
    for kind in KINDS {
        let mut rng = SimRng::seed_from_u64(0xC402);
        let cfg = config_of(kind);
        for _ in 0..64 {
            let data = random_vec(&mut rng, 60_000);
            let segs = segment_bytes(&data, &cfg);
            for (i, s) in segs.iter().enumerate() {
                assert!(s.len <= cfg.max_size(), "kind={}", kind.label());
                if i + 1 < segs.len() {
                    assert!(s.len >= cfg.min_size(), "kind={}", kind.label());
                }
            }
        }
    }
}

/// Segmentation is a pure function of the content.
#[test]
fn segmentation_is_deterministic() {
    for kind in KINDS {
        let mut rng = SimRng::seed_from_u64(0xC403);
        for _ in 0..32 {
            let data = random_vec(&mut rng, 30_000);
            assert_eq!(
                segment_bytes(&data, &config_of(kind)),
                segment_bytes(&data, &config_of(kind)),
                "kind={}",
                kind.label()
            );
        }
    }
}

/// Digests identify content: identical slices <=> identical digests
/// within one run (no accidental collisions on random data).
#[test]
fn digests_match_content() {
    for kind in KINDS {
        let mut rng = SimRng::seed_from_u64(0xC404);
        for _ in 0..32 {
            let data = random_vec(&mut rng, 30_000);
            let segs = segment_bytes(&data, &config_of(kind));
            for s in &segs {
                let expect = unidrive_crypto::Sha1::digest(&data[s.range()]);
                assert_eq!(s.digest, expect, "kind={}", kind.label());
            }
        }
    }
}

/// Appending data never changes the digests of segments that end well
/// before the appended region (the dedup-stability property).
#[test]
fn appends_preserve_early_segments() {
    for kind in KINDS {
        let mut rng = SimRng::seed_from_u64(0xC405);
        let cfg = config_of(kind);
        for _ in 0..32 {
            let base_len = 20_000 + rng.below(20_000) as usize;
            let data: Vec<u8> = (0..base_len).map(|_| rng.next_u64() as u8).collect();
            let tail_len = 1 + rng.below(4_999) as usize;
            let tail: Vec<u8> = (0..tail_len).map(|_| rng.next_u64() as u8).collect();
            let before = segment_bytes(&data, &cfg);
            let mut extended = data.clone();
            extended.extend_from_slice(&tail);
            let after = segment_bytes(&extended, &cfg);
            // Every 'before' segment except possibly the last two must
            // reappear verbatim (the tail can merge into the final
            // segment, and the forced max-size cut before it may shift
            // once).
            if before.len() > 2 {
                for (b, a) in before[..before.len() - 2].iter().zip(&after) {
                    assert_eq!(b, a, "kind={}", kind.label());
                }
            }
        }
    }
}

/// Editing bytes inside an early segment leaves every boundary past
/// the edited segment untouched, for both kinds across seeds × θ —
/// cut decisions see only their own trailing window.
#[test]
fn prefix_edit_keeps_downstream_boundaries() {
    for kind in KINDS {
        for theta in [1024usize, 4096, 16 * 1024] {
            let cfg = ChunkerConfig::new(theta).with_kind(kind);
            let mut rng = SimRng::seed_from_u64(0xC406 ^ theta as u64);
            for _ in 0..8 {
                let data: Vec<u8> = (0..40 * theta).map(|_| rng.next_u64() as u8).collect();
                let before = segment_bytes(&data, &cfg);
                assert!(before.len() > 3, "kind={} theta={theta}", kind.label());
                let mut edited = data.clone();
                for b in &mut edited[100..300] {
                    *b ^= 0xA5;
                }
                let after = segment_bytes(&edited, &cfg);
                let stable_from = before[0].offset + before[0].len.max(after[0].len);
                let cuts = |segs: &[unidrive_chunker::Segment]| {
                    segs.iter()
                        .map(|s| s.offset + s.len)
                        .filter(|&c| c > stable_from)
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    cuts(&before),
                    cuts(&after),
                    "kind={} theta={theta}",
                    kind.label()
                );
            }
        }
    }
}

/// The tentpole contract: parallel cut-point discovery is byte-for-byte
/// the serial scan at 1/2/8 threads, for both kinds, across seeds × θ
/// and across inputs spanning the serial-fallback and multi-slice
/// regimes (including degenerate all-constant data with forced cuts).
#[test]
fn parallel_cut_points_equal_serial() {
    for kind in KINDS {
        for theta in [2048usize, 8 * 1024] {
            let cfg = ChunkerConfig::new(theta).with_kind(kind);
            let mut rng = SimRng::seed_from_u64(0xC407 ^ theta as u64);
            for round in 0..6 {
                let len = 50_000 + rng.below(1_500_000) as usize;
                let data: Vec<u8> = if round == 5 {
                    vec![0xAB; len] // forced-cut path: no candidates at all
                } else {
                    (0..len).map(|_| rng.next_u64() as u8).collect()
                };
                let serial = cut_points(&data, &cfg);
                for threads in [1usize, 2, 8] {
                    let pool = WorkerPool::new(threads);
                    assert_eq!(
                        cut_points_parallel(&data, &cfg, &pool),
                        serial,
                        "kind={} theta={theta} len={len} threads={threads}",
                        kind.label()
                    );
                }
            }
        }
    }
}
