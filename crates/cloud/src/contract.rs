//! The [`CloudStore`] conformance suite: one set of behavioral checks
//! every backend — in-memory, on-disk, simulated, or real HTTP — must
//! pass identically.
//!
//! The trait documents a contract (five ops, path grammar,
//! read-after-write, `NotFound` edges, append semantics); this module
//! turns each clause into an executable check over `&dyn CloudStore`,
//! and [`cloud_contract_tests!`](crate::cloud_contract_tests)
//! instantiates the whole suite as `#[test]` functions for a given
//! backend.
//!
//! Backends differ in how a fresh store is produced and where the
//! check must run (a [`SimCloud`](crate::SimCloud) only works inside a
//! simulation task; an [`S3Cloud`](crate::S3Cloud) needs a live
//! [`MockS3`](crate::MockS3)), so the macro takes a *driver*: a
//! function receiving one check `fn(&dyn CloudStore)` that is
//! responsible for building the world, running the check against a
//! fresh store, and tearing the world down.
//!
//! ```
//! use unidrive_cloud::{cloud_contract_tests, CloudStore, MemCloud};
//!
//! mod mem_contract {
//!     use super::*;
//!     cloud_contract_tests!(|check: fn(&dyn CloudStore)| {
//!         check(&MemCloud::new("mem"));
//!     });
//! }
//! # fn main() {}
//! ```

use unidrive_util::bytes::Bytes;

use crate::{CloudError, CloudStore};

/// Upload stores bytes; download returns them unchanged; a second
/// upload to the same path replaces (not appends to) the object.
pub fn check_upload_download_roundtrip(cloud: &dyn CloudStore) {
    cloud
        .upload("ct/round/a.bin", Bytes::from_static(b"hello world"))
        .expect("upload");
    assert_eq!(
        cloud.download("ct/round/a.bin").expect("download"),
        Bytes::from_static(b"hello world")
    );
    // Replace semantics: shorter second write fully supersedes.
    cloud
        .upload("ct/round/a.bin", Bytes::from_static(b"bye"))
        .expect("re-upload");
    assert_eq!(
        cloud.download("ct/round/a.bin").expect("re-download"),
        Bytes::from_static(b"bye")
    );
    // Empty objects are legal.
    cloud.upload("ct/round/empty", Bytes::new()).expect("empty upload");
    assert!(cloud.download("ct/round/empty").expect("empty download").is_empty());
}

/// Upload auto-creates parents; `create_dir` is explicit, idempotent,
/// and listed directories report children with correct kinds/sizes.
pub fn check_create_dir_and_list(cloud: &dyn CloudStore) {
    cloud.create_dir("ct/tree/sub").expect("create_dir");
    cloud.create_dir("ct/tree/sub").expect("create_dir is idempotent");
    cloud
        .upload("ct/tree/f1", Bytes::from_static(b"12345"))
        .expect("upload");
    let mut listing = cloud.list("ct/tree").expect("list");
    listing.sort_by(|a, b| a.name.cmp(&b.name));
    let summary: Vec<(&str, u64, bool)> = listing
        .iter()
        .map(|e| (e.name.as_str(), e.size, e.is_dir))
        .collect();
    assert_eq!(summary, vec![("f1", 5, false), ("sub", 0, true)]);
    // Root listing via the empty path must work and contain "ct".
    let root = cloud.list("").expect("list root");
    assert!(
        root.iter().any(|e| e.name == "ct" && e.is_dir),
        "root listing missing ct: {root:?}"
    );
}

/// Delete removes an object, removes a directory recursively, and the
/// deleted names vanish from subsequent listings.
pub fn check_delete_object_and_dir(cloud: &dyn CloudStore) {
    cloud
        .upload("ct/del/keep.bin", Bytes::from_static(b"k"))
        .expect("upload keep");
    cloud
        .upload("ct/del/sub/deep.bin", Bytes::from_static(b"d"))
        .expect("upload deep");
    cloud.delete("ct/del/keep.bin").expect("delete object");
    assert!(matches!(
        cloud.download("ct/del/keep.bin"),
        Err(CloudError::NotFound { .. })
    ));
    // Recursive directory delete takes the nested object with it.
    cloud.delete("ct/del/sub").expect("delete dir");
    assert!(matches!(
        cloud.download("ct/del/sub/deep.bin"),
        Err(CloudError::NotFound { .. })
    ));
    let listing = cloud.list("ct/del").expect("list after deletes");
    assert!(listing.is_empty(), "leftovers: {listing:?}");
}

/// Downloading an absent object answers `NotFound` — never a panic,
/// never a transport error — under every dialect. Delete and list of
/// absent paths follow the dialect the store *declares* via
/// [`strict_not_found`](crate::CloudCaps::strict_not_found): the
/// strict dialect answers `NotFound`, the idempotent S3 dialect
/// succeeds (delete is a no-op, an absent prefix lists as empty).
/// Either way the claim must match the behavior, so the capability is
/// honest and both dialects are certified passing modes.
pub fn check_not_found_edges(cloud: &dyn CloudStore) {
    cloud
        .upload("ct/nf/present", Bytes::from_static(b"x"))
        .expect("upload");
    match cloud.download("ct/nf/ghost") {
        Err(CloudError::NotFound { .. }) => {}
        other => panic!("download of absent object: expected NotFound, got {other:?}"),
    }
    let strict = cloud.caps().strict_not_found;
    match (strict, cloud.delete("ct/nf/ghost")) {
        (true, Err(CloudError::NotFound { .. })) | (false, Ok(())) => {}
        (_, other) => panic!(
            "delete of absent object (strict_not_found={strict}): got {other:?}"
        ),
    }
    match (strict, cloud.list("ct/nf/ghost-dir")) {
        (true, Err(CloudError::NotFound { .. })) => {}
        (false, Ok(entries)) if entries.is_empty() => {}
        (_, other) => panic!(
            "list of absent directory (strict_not_found={strict}): got {other:?}"
        ),
    }
}

/// Malformed paths are rejected with `InvalidPath` by every mutating
/// and reading op, before any transport round trip can fail first.
pub fn check_invalid_path_rejected(cloud: &dyn CloudStore) {
    for bad in ["", "/abs", "trail/", "a//b", "a/../b", "."] {
        assert!(
            matches!(
                cloud.upload(bad, Bytes::from_static(b"x")),
                Err(CloudError::InvalidPath { .. })
            ),
            "upload accepted {bad:?}"
        );
        assert!(
            matches!(cloud.download(bad), Err(CloudError::InvalidPath { .. })),
            "download accepted {bad:?}"
        );
        assert!(
            matches!(cloud.delete(bad), Err(CloudError::InvalidPath { .. })),
            "delete accepted {bad:?}"
        );
        // list("") is the root — legal — so only non-empty bad shapes
        // apply to list and create_dir.
        if !bad.is_empty() {
            assert!(
                matches!(cloud.list(bad), Err(CloudError::InvalidPath { .. })),
                "list accepted {bad:?}"
            );
            assert!(
                matches!(cloud.create_dir(bad), Err(CloudError::InvalidPath { .. })),
                "create_dir accepted {bad:?}"
            );
        }
    }
}

/// Append creates an absent object and extends an existing one, via
/// the native path or the composed read-modify-write default alike.
pub fn check_append_accumulates(cloud: &dyn CloudStore) {
    cloud
        .append("ct/app/log", Bytes::from_static(b"one|"))
        .expect("append creates");
    cloud
        .append("ct/app/log", Bytes::from_static(b"two|"))
        .expect("append extends");
    cloud
        .append("ct/app/log", Bytes::from_static(b"three"))
        .expect("append extends again");
    assert_eq!(
        cloud.download("ct/app/log").expect("download"),
        Bytes::from_static(b"one|two|three")
    );
}

/// When the store claims read-after-write (every bare backend must; a
/// delayed-visibility chaos wrapper may not), a completed upload is
/// immediately visible to download, list, and `exists`.
pub fn check_read_after_write(cloud: &dyn CloudStore) {
    if !cloud.caps().read_after_write {
        return;
    }
    for i in 0..4u32 {
        let path = format!("ct/raw/gen{i}");
        let body = Bytes::from(format!("generation {i}").into_bytes());
        cloud.upload(&path, body.clone()).expect("upload");
        assert_eq!(cloud.download(&path).expect("read own write"), body);
        assert!(cloud.exists(&path).expect("exists"), "{path} invisible to list");
    }
}

/// `caps()` tells the truth about append: if `native_append` is
/// claimed the backend must override the composed default, and either
/// way repeated appends must observe each other (the claim is about
/// atomicity under faults, which only the fault-injection suites can
/// probe — here we pin the visible semantics).
pub fn check_caps_are_coherent(cloud: &dyn CloudStore) {
    let caps = cloud.caps();
    // A documented object-size ceiling below 1 MiB would break the
    // block sizes the planner emits; no real provider is that small.
    if let Some(limit) = caps.max_object_bytes {
        assert!(limit >= 1 << 20, "max_object_bytes {limit} implausibly small");
    }
    cloud
        .append("ct/caps/log", Bytes::from_static(b"a"))
        .expect("append");
    cloud
        .append("ct/caps/log", Bytes::from_static(b"b"))
        .expect("append");
    assert_eq!(
        cloud.download("ct/caps/log").expect("download"),
        Bytes::from_static(b"ab")
    );
}

/// One conformance check: takes a fresh store, panics on violation.
pub type ContractCheck = fn(&dyn CloudStore);

/// Every check in the suite, for drivers that want to iterate instead
/// of instantiating the macro (e.g. to run the whole suite inside one
/// simulation task).
pub const ALL_CHECKS: &[(&str, ContractCheck)] = &[
    ("upload_download_roundtrip", check_upload_download_roundtrip),
    ("create_dir_and_list", check_create_dir_and_list),
    ("delete_object_and_dir", check_delete_object_and_dir),
    ("not_found_edges", check_not_found_edges),
    ("invalid_path_rejected", check_invalid_path_rejected),
    ("append_accumulates", check_append_accumulates),
    ("read_after_write", check_read_after_write),
    ("caps_are_coherent", check_caps_are_coherent),
];

/// Instantiates the [`contract`](crate::contract) conformance suite as
/// `#[test]` functions.
///
/// The single argument is a *driver* expression of type
/// `Fn(fn(&dyn CloudStore))`: for each check the driver must construct
/// a **fresh** store (checks assume a clean namespace), run the check
/// against it, and clean up. See the [module docs](crate::contract)
/// for a `MemCloud` example and `crates/cloud/tests/contract.rs` for
/// drivers covering disk, simulation, and HTTP backends.
#[macro_export]
macro_rules! cloud_contract_tests {
    ($driver:expr) => {
        #[test]
        fn contract_upload_download_roundtrip() {
            ($driver)($crate::contract::check_upload_download_roundtrip as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_create_dir_and_list() {
            ($driver)($crate::contract::check_create_dir_and_list as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_delete_object_and_dir() {
            ($driver)($crate::contract::check_delete_object_and_dir as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_not_found_edges() {
            ($driver)($crate::contract::check_not_found_edges as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_invalid_path_rejected() {
            ($driver)($crate::contract::check_invalid_path_rejected as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_append_accumulates() {
            ($driver)($crate::contract::check_append_accumulates as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_read_after_write() {
            ($driver)($crate::contract::check_read_after_write as fn(&dyn $crate::CloudStore));
        }
        #[test]
        fn contract_caps_are_coherent() {
            ($driver)($crate::contract::check_caps_are_coherent as fn(&dyn $crate::CloudStore));
        }
    };
}
