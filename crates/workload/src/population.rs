//! Population-scale workload models for the fleet simulator.
//!
//! The per-user trial generators in [`gen`](crate::trial_population)
//! describe *one* user's files; this module describes how a whole
//! population of devices behaves over time: how often a device wakes
//! up with dirty data (arrivals), how much it syncs per session
//! (bounded-Pareto session sizes — file-sync traffic is heavy-tailed),
//! how devices go dormant and come back (churn), and how shared "hot"
//! folders concentrate contention on a few quorum locks (Zipf
//! popularity).
//!
//! Everything samples from a caller-supplied [`SimRng`] so the fleet
//! harness can derive one independent stream per `(seed, device,
//! activation)` and stay byte-identical across shard counts.

use unidrive_sim::SimRng;

/// Exponential inter-arrival distribution with the given mean.
///
/// # Examples
///
/// ```
/// use unidrive_sim::SimRng;
/// use unidrive_workload::Exp;
///
/// let mut rng = SimRng::seed_from_u64(7);
/// let gap = Exp::new(600.0).sample(&mut rng);
/// assert!(gap > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    /// Mean of the distribution (1/λ).
    pub mean: f64,
}

impl Exp {
    /// An exponential with mean `mean` (clamped to a small positive
    /// floor so a zero mean cannot produce NaN).
    pub fn new(mean: f64) -> Exp {
        Exp { mean: mean.max(1e-9) }
    }

    /// Draws one value by inverse CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // 1 - u is in (0, 1], so ln is finite.
        -self.mean * (1.0 - rng.next_f64()).ln()
    }
}

/// Bounded Pareto distribution on `[lo, hi]` with tail index `alpha`.
///
/// Session sizes in file-sync workloads are heavy-tailed: most
/// sessions touch a few kilobytes of edits, a rare session dumps a
/// photo library. A bounded Pareto captures that while keeping a
/// finite worst case the simulator can budget for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail index (> 0, ≠ 1 for the mean formula).
    pub alpha: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl BoundedPareto {
    /// A bounded Pareto on `[lo, hi]` with tail index `alpha`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> BoundedPareto {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo, "degenerate bounded Pareto");
        BoundedPareto { alpha, lo, hi }
    }

    /// Draws one value by inverse CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.next_f64();
        let c = 1.0 - (self.lo / self.hi).powf(self.alpha);
        self.lo * (1.0 - u * c).powf(-1.0 / self.alpha)
    }

    /// Analytic mean (requires `alpha != 1`).
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        let norm = l.powf(a) / (1.0 - (l / h).powf(a));
        norm * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Used for hot-folder popularity: a handful of shared folders absorb
/// most of the fleet's lock traffic, which is exactly the contention
/// regime the quorum-lock path has to survive.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf over `n` ranks (n ≥ 1) with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Activity class of a device, assigned deterministically by hashing
/// the device id (so the assignment is independent of shard layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// Syncs rarely; small sessions.
    Light,
    /// The bulk of the population.
    Regular,
    /// Power user: frequent sessions, heavier tails.
    Heavy,
}

impl DeviceClass {
    /// Stable lowercase label, used as a series/metrics dimension.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeviceClass::Light => "light",
            DeviceClass::Regular => "regular",
            DeviceClass::Heavy => "heavy",
        }
    }

    /// Multiplier applied to the profile's mean inter-session gap
    /// (heavy users sync more often → smaller gap).
    pub fn gap_factor(&self) -> f64 {
        match self {
            DeviceClass::Light => 4.0,
            DeviceClass::Regular => 1.0,
            DeviceClass::Heavy => 0.35,
        }
    }

    /// Multiplier applied to session size.
    pub fn size_factor(&self) -> f64 {
        match self {
            DeviceClass::Light => 0.5,
            DeviceClass::Regular => 1.0,
            DeviceClass::Heavy => 2.5,
        }
    }
}

/// Arrival / churn / session-size model for a device population.
///
/// All sampling methods take an explicit [`SimRng`] so callers control
/// stream derivation; all time quantities are in seconds (the fleet
/// engine converts to virtual nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationProfile {
    /// Mean gap between sync sessions for a `Regular` device, seconds.
    pub mean_session_gap_secs: f64,
    /// Probability that after a session the device goes dormant
    /// instead of staying in its active rhythm.
    pub dormant_prob: f64,
    /// Mean dormancy duration, seconds.
    pub mean_dormant_secs: f64,
    /// Probability that a dormant transition is permanent churn —
    /// the device never returns inside the experiment horizon.
    pub churn_prob: f64,
    /// Session payload size distribution, bytes.
    pub session_bytes: BoundedPareto,
    /// Fraction of devices that are members of a shared hot folder.
    pub hot_fraction: f64,
    /// Zipf exponent for hot-folder popularity.
    pub hot_zipf_s: f64,
    /// Class mix: cumulative probabilities for (Light, Regular); the
    /// remainder is Heavy.
    pub class_cdf: (f64, f64),
}

impl PopulationProfile {
    /// Consumer sync population: sessions every ~10 min for a regular
    /// device, 30% of devices in shared folders, pronounced Zipf skew.
    pub fn consumer() -> PopulationProfile {
        PopulationProfile {
            mean_session_gap_secs: 600.0,
            dormant_prob: 0.15,
            mean_dormant_secs: 4.0 * 3600.0,
            churn_prob: 0.01,
            session_bytes: BoundedPareto::new(1.25, 16.0 * 1024.0, 512.0 * 1024.0 * 1024.0),
            hot_fraction: 0.30,
            hot_zipf_s: 1.1,
            class_cdf: (0.30, 0.85),
        }
    }

    /// Team/enterprise population: tighter sync cadence, more shared
    /// folders, flatter popularity (teams spread across projects).
    pub fn team() -> PopulationProfile {
        PopulationProfile {
            mean_session_gap_secs: 240.0,
            dormant_prob: 0.08,
            mean_dormant_secs: 2.0 * 3600.0,
            churn_prob: 0.004,
            session_bytes: BoundedPareto::new(1.4, 8.0 * 1024.0, 128.0 * 1024.0 * 1024.0),
            hot_fraction: 0.55,
            hot_zipf_s: 0.8,
            class_cdf: (0.15, 0.75),
        }
    }

    /// Looks up a profile preset by name (`consumer` | `team`).
    pub fn by_name(name: &str) -> Option<PopulationProfile> {
        match name {
            "consumer" => Some(PopulationProfile::consumer()),
            "team" => Some(PopulationProfile::team()),
            _ => None,
        }
    }

    /// Deterministic class assignment for `device`, independent of
    /// shard layout and of every sampling stream.
    pub fn class_of(&self, seed: u64, device: u64) -> DeviceClass {
        let mut rng = SimRng::derive(seed, &format!("pop/class/{device}"));
        let u = rng.next_f64();
        if u < self.class_cdf.0 {
            DeviceClass::Light
        } else if u < self.class_cdf.1 {
            DeviceClass::Regular
        } else {
            DeviceClass::Heavy
        }
    }

    /// Gap until the device's next session, in seconds. Draws the
    /// dormancy / churn mixture; returns `None` when the device churns
    /// permanently.
    pub fn next_gap_secs(&self, class: DeviceClass, rng: &mut SimRng) -> Option<f64> {
        if rng.chance(self.dormant_prob) {
            if rng.chance(self.churn_prob / self.dormant_prob.max(1e-9)) {
                return None;
            }
            Some(Exp::new(self.mean_dormant_secs).sample(rng))
        } else {
            Some(Exp::new(self.mean_session_gap_secs * class.gap_factor()).sample(rng))
        }
    }

    /// Session payload in bytes for a device of `class`.
    pub fn session_bytes(&self, class: DeviceClass, rng: &mut SimRng) -> u64 {
        (self.session_bytes.sample(rng) * class.size_factor()).round().max(1.0) as u64
    }

    /// Whether `device` is a member of a shared hot folder, and if so
    /// which one (Zipf-popular rank in `0..hot_folders`). Deterministic
    /// per device, independent of shard layout.
    pub fn hot_membership(&self, seed: u64, device: u64, zipf: &Zipf) -> Option<usize> {
        let mut rng = SimRng::derive(seed, &format!("pop/hot/{device}"));
        if rng.chance(self.hot_fraction) {
            Some(zipf.sample(&mut rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson;

    #[test]
    fn exp_mean_and_variance_within_tolerance() {
        let mut rng = SimRng::derive(11, "test/exp");
        let d = Exp::new(600.0);
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let s = crate::Summary::of(&xs).unwrap();
        assert!((s.mean - 600.0).abs() / 600.0 < 0.03, "mean {}", s.mean);
        // Exponential: variance = mean².
        assert!((s.variance - 600.0 * 600.0).abs() / (600.0 * 600.0) < 0.08, "var {}", s.variance);
    }

    #[test]
    fn bounded_pareto_mean_matches_analytic() {
        let d = BoundedPareto::new(1.25, 16e3, 512e6);
        let mut rng = SimRng::derive(12, "test/pareto");
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let expect = d.mean();
        assert!((mean - expect).abs() / expect < 0.10, "mean {mean} vs {expect}");
        assert!(xs.iter().all(|&x| (16e3..=512e6).contains(&x)));
    }

    #[test]
    fn zipf_skews_toward_rank_zero() {
        let z = Zipf::new(50, 1.1);
        let mut rng = SimRng::derive(13, "test/zipf");
        let mut counts = vec![0u64; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 empirical frequency tracks the pmf.
        let f0 = counts[0] as f64 / 50_000.0;
        assert!((f0 - z.pmf(0)).abs() / z.pmf(0) < 0.05, "f0 {f0} pmf {}", z.pmf(0));
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
    }

    #[test]
    fn derive_streams_are_independent_across_shards_and_devices() {
        // The fleet relies on derived streams (per shard label, per
        // device label) being statistically independent.
        let pairs = [
            ("fleet/shard/0", "fleet/shard/1"),
            ("fleet/shard/0", "fleet/dev/0/0"),
            ("fleet/dev/1/0", "fleet/dev/1/1"),
        ];
        for (la, lb) in pairs {
            let mut a = SimRng::derive(99, la);
            let mut b = SimRng::derive(99, lb);
            let xs: Vec<f64> = (0..4000).map(|_| a.next_f64()).collect();
            let ys: Vec<f64> = (0..4000).map(|_| b.next_f64()).collect();
            let r = pearson(&xs, &ys).unwrap();
            assert!(r.abs() < 0.06, "{la} vs {lb}: r = {r}");
        }
    }

    #[test]
    fn class_assignment_is_deterministic_and_mixed() {
        let p = PopulationProfile::consumer();
        let mut light = 0;
        let mut heavy = 0;
        for d in 0..10_000u64 {
            let c = p.class_of(42, d);
            assert_eq!(c, p.class_of(42, d));
            match c {
                DeviceClass::Light => light += 1,
                DeviceClass::Heavy => heavy += 1,
                DeviceClass::Regular => {}
            }
        }
        let lf = light as f64 / 10_000.0;
        let hf = heavy as f64 / 10_000.0;
        assert!((lf - 0.30).abs() < 0.03, "light {lf}");
        assert!((hf - 0.15).abs() < 0.03, "heavy {hf}");
    }

    #[test]
    fn churn_mixture_terminates_and_hot_membership_is_stable() {
        let p = PopulationProfile::consumer();
        let zipf = Zipf::new(20, p.hot_zipf_s);
        let mut rng = SimRng::derive(5, "test/churn");
        let mut churned = 0;
        for _ in 0..20_000 {
            if p.next_gap_secs(DeviceClass::Regular, &mut rng).is_none() {
                churned += 1;
            }
        }
        // churn_prob = 1% of sessions overall.
        let cf = churned as f64 / 20_000.0;
        assert!((cf - p.churn_prob).abs() < 0.005, "churn {cf}");
        let mut members = 0;
        for d in 0..5_000u64 {
            let m = p.hot_membership(42, d, &zipf);
            assert_eq!(m, p.hot_membership(42, d, &zipf));
            if m.is_some() {
                members += 1;
            }
        }
        let mf = members as f64 / 5_000.0;
        assert!((mf - p.hot_fraction).abs() < 0.04, "hot {mf}");
    }
}
