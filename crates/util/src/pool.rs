//! A std-only worker pool for CPU-bound batch work.
//!
//! The ingest pipeline (chunk → hash → encode) fans per-segment work
//! out across cores. Everything here is deterministic from the
//! caller's point of view: [`WorkerPool::par_map_indexed`] preserves
//! input order by collecting results by index, so the output is
//! byte-identical whatever the thread count or OS scheduling — the
//! property the same-seed experiment gates rely on.
//!
//! Workers are spawned per batch via [`std::thread::scope`], which
//! lets the mapped closure borrow from the caller with no `'static`
//! bound (and therefore no defensive copies). For the work sizes this
//! pool exists for — hashing and erasure-coding megabyte-scale
//! segments — thread spawn cost is noise; a persistent pool would buy
//! nothing but lifetime contortions.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sync::Mutex;

/// A fixed-width worker pool over OS threads.
///
/// # Examples
///
/// ```
/// use unidrive_util::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.par_map_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1). One worker
    /// means strictly inline execution on the calling thread.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine: `available_parallelism`, or 1 if
    /// the OS cannot say.
    pub fn auto() -> Self {
        WorkerPool::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning results **in input
    /// order** regardless of which worker ran which item.
    ///
    /// Items are claimed atomically one at a time, so uneven item costs
    /// balance across workers. The calling thread participates, so a
    /// 1-thread pool (or a single item) degenerates to a plain
    /// sequential map with no spawn or synchronization at all.
    ///
    /// # Panics
    ///
    /// A panic inside `f` propagates to the caller (via
    /// [`std::thread::scope`]).
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        let run = |_worker: usize| {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                local.push((i, f(i, &items[i])));
            }
            if !local.is_empty() {
                collected.lock().append(&mut local);
            }
        };
        let helpers = self.threads.min(items.len()) - 1;
        std::thread::scope(|s| {
            for w in 0..helpers {
                let run = &run;
                s.spawn(move || run(w + 1));
            }
            run(0);
        });
        let mut collected = collected.into_inner();
        debug_assert_eq!(collected.len(), items.len());
        collected.sort_unstable_by_key(|&(i, _)| i);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.par_map_indexed(&items, |i, &x| {
                assert_eq!(i as u32, x);
                x * 2 + 1
            });
            assert_eq!(out, items.iter().map(|&x| x * 2 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_output_across_thread_counts() {
        // The determinism property the ingest pipeline depends on.
        let items: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; 1000 + i as usize]).collect();
        let digest =
            |_: usize, v: &Vec<u8>| v.iter().fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
        let reference = WorkerPool::new(1).par_map_indexed(&items, digest);
        for threads in [2, 4, 8] {
            assert_eq!(
                WorkerPool::new(threads).par_map_indexed(&items, digest),
                reference
            );
        }
    }

    #[test]
    fn handles_edge_sizes() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.par_map_indexed(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(pool.par_map_indexed(&[7u8], |i, &b| (i, b)), vec![(0, 7)]);
        // More threads than items.
        assert_eq!(
            pool.par_map_indexed(&[1u8, 2], |_, &b| b as u32),
            vec![1, 2]
        );
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::auto().threads() >= 1);
    }

    #[test]
    fn uneven_work_items_all_complete() {
        let items: Vec<usize> = (0..200).map(|i| (i * 7919) % 5000).collect();
        let pool = WorkerPool::new(8);
        let out = pool.par_map_indexed(&items, |_, &n| {
            // Busy-ish loop with data dependence so it is not optimized
            // away; cost varies per item.
            let mut acc = 1u64;
            for j in 0..n {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(j as u64);
            }
            acc
        });
        assert_eq!(out.len(), items.len());
        let reference = WorkerPool::new(1).par_map_indexed(&items, |_, &n| {
            let mut acc = 1u64;
            for j in 0..n {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(j as u64);
            }
            acc
        });
        assert_eq!(out, reference);
    }
}
