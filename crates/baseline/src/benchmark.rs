//! The *multi-cloud benchmark* baseline (paper §7.1): a traditional
//! multi-cloud design in the style of RACS and DepSky — erasure-coded
//! blocks uniformly distributed across clouds (so it has UniDrive's
//! reliability and security), but **no over-provisioning and no dynamic
//! scheduling**: every cloud receives exactly its fair share, uploads
//! wait for the slowest assignment, and downloads fetch a statically
//! chosen set of `k` blocks.
//!
//! Both directions run on the shared [`TransferEngine`]; the policies
//! here encode the *static* plans (fixed block→cloud assignment, no
//! reaction to observed speed) that UniDrive's dynamic scheduling
//! improves on.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{CloudError, CloudId, CloudSet, RetryPolicy};
use unidrive_core::{EngineParams, JobDesc, TransferEngine, TransferPolicy, WireOp};
use unidrive_erasure::{Codec, RedundancyConfig};
use unidrive_meta::{block_path, BlockRef, SegmentId};
use unidrive_obs::{Obs, SpanId};
use unidrive_sim::{Runtime, Time};
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

/// Per-segment `(id, plaintext length, block locations)` — the client's
/// durable record of where a file's erasure-coded blocks live.
pub type SegmentManifest = Vec<(SegmentId, u64, Vec<BlockRef>)>;

/// Static erasure-coded multi-cloud client (RACS/DepSky-like).
pub struct MultiCloudBenchmark {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    redundancy: RedundancyConfig,
    codec: Arc<Codec>,
    connections: usize,
    chunk_size: usize,
    retry: RetryPolicy,
    obs: Obs,
    /// name → per-segment (id, len, blocks).
    manifest: Mutex<HashMap<String, SegmentManifest>>,
}

impl std::fmt::Debug for MultiCloudBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCloudBenchmark")
            .field("clouds", &self.clouds)
            .finish()
    }
}

/// One statically planned block upload. Kept whole as the job token so
/// a failed block can be re-queued for one more persistent round.
struct BenchBlock {
    si: usize,
    path: String,
    bytes: Bytes,
    requeued: bool,
}

/// Fair-share static upload: per-cloud queues, per-segment ack counts,
/// availability stamped when every segment has `k` blocks durable.
struct BenchUploadPolicy {
    queues: Vec<VecDeque<BenchBlock>>,
    inflight: usize,
    acks: Vec<usize>,
    segs_ready: usize,
    k: usize,
    t0: Time,
    available: Option<Duration>,
    error: Option<CloudError>,
    done: bool,
}

impl BenchUploadPolicy {
    fn new(queues: Vec<VecDeque<BenchBlock>>, seg_count: usize, k: usize, t0: Time) -> Self {
        let mut p = BenchUploadPolicy {
            queues,
            inflight: 0,
            acks: vec![0; seg_count],
            segs_ready: 0,
            k,
            t0,
            available: None,
            error: None,
            done: false,
        };
        p.settle();
        p
    }

    fn settle(&mut self) {
        self.done = self.inflight == 0 && self.queues.iter().all(VecDeque::is_empty);
    }
}

impl TransferPolicy for BenchUploadPolicy {
    type Token = BenchBlock;

    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<BenchBlock>> {
        let block = self.queues.get_mut(cloud.0)?.pop_front()?;
        self.inflight += 1;
        let path = block.path.clone();
        let bytes = block.bytes.clone();
        let index = (block.si % u16::MAX as usize) as u16;
        Some(JobDesc {
            token: block,
            index,
            extra: false,
            parent_span: None,
            op: WireOp::Upload {
                path,
                payload: Box::new(move || bytes),
            },
        })
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn on_success(&mut self, _cloud: CloudId, block: BenchBlock, _data: Option<Bytes>, now: Time) {
        self.inflight -= 1;
        self.acks[block.si] += 1;
        if self.acks[block.si] == self.k {
            self.segs_ready += 1;
            if self.segs_ready == self.acks.len() {
                self.available = Some(now.saturating_duration_since(self.t0));
            }
        }
        self.settle();
    }

    fn on_failure(&mut self, cloud: CloudId, mut block: BenchBlock, error: CloudError, _now: Time) {
        self.inflight -= 1;
        if block.requeued {
            // Persistent failure: two full retry rounds exhausted.
            if self.error.is_none() {
                self.error = Some(error);
            }
        } else {
            block.requeued = true;
            self.queues[cloud.0].push_back(block);
        }
        self.settle();
    }
}

/// Static k-of-n download: segments strictly in order; the first `k`
/// blocks of the current segment are fetched in parallel, falling back
/// to the remaining blocks only on hard errors, then decoded before the
/// next segment starts — no reassignment if a chosen cloud is slow.
struct BenchDownloadPolicy {
    segments: Vec<(SegmentId, u64, Vec<BlockRef>)>,
    codec: Arc<Codec>,
    k: usize,
    cur: usize,
    /// (share slot, block) waiting for an idle connection of its cloud.
    pending: Vec<(usize, BlockRef)>,
    fallback: Vec<BlockRef>,
    shares: Vec<Option<(u16, Bytes)>>,
    filled: usize,
    inflight: usize,
    out: Vec<u8>,
    error: Option<CloudError>,
    done: bool,
}

impl BenchDownloadPolicy {
    fn new(segments: Vec<(SegmentId, u64, Vec<BlockRef>)>, codec: Arc<Codec>, k: usize) -> Self {
        let mut p = BenchDownloadPolicy {
            segments,
            codec,
            k,
            cur: 0,
            pending: Vec::new(),
            fallback: Vec::new(),
            shares: Vec::new(),
            filled: 0,
            inflight: 0,
            out: Vec::new(),
            error: None,
            done: false,
        };
        if p.segments.is_empty() {
            p.done = true;
        } else {
            p.load_segment();
        }
        p
    }

    fn load_segment(&mut self) {
        let (_, _, blocks) = &self.segments[self.cur];
        self.pending = blocks.iter().take(self.k).copied().enumerate().collect();
        self.fallback = blocks.iter().skip(self.k).copied().collect();
        self.shares = vec![None; self.pending.len()];
        self.filled = 0;
    }

    fn fail(&mut self, error: CloudError) {
        if self.error.is_none() {
            self.error = Some(error);
        }
        // Stop dispatching; done once in-flight work drains.
        self.pending.clear();
        self.done = self.inflight == 0;
    }
}

impl TransferPolicy for BenchDownloadPolicy {
    type Token = (usize, BlockRef);

    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<(usize, BlockRef)>> {
        let pos = self
            .pending
            .iter()
            .position(|(_, b)| b.cloud as usize == cloud.0)?;
        let (slot, block) = self.pending.remove(pos);
        self.inflight += 1;
        let id = self.segments[self.cur].0;
        Some(JobDesc {
            token: (slot, block),
            index: block.index,
            extra: false,
            parent_span: None,
            op: WireOp::Download {
                path: block_path(&id, block.index),
            },
        })
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn on_success(
        &mut self,
        _cloud: CloudId,
        (slot, block): (usize, BlockRef),
        data: Option<Bytes>,
        _now: Time,
    ) {
        self.inflight -= 1;
        if self.error.is_some() {
            self.done = self.inflight == 0;
            return;
        }
        self.shares[slot] = Some((block.index, data.expect("download job carries data")));
        self.filled += 1;
        if self.filled < self.shares.len() {
            return;
        }
        // Segment complete: decode, then move on (every slot is filled,
        // so nothing of this segment is still in flight).
        let collected: Vec<(usize, &[u8])> = self
            .shares
            .iter()
            .map(|s| {
                let (i, b) = s.as_ref().expect("filled == len");
                (*i as usize, b.as_ref())
            })
            .collect();
        let len = self.segments[self.cur].1 as usize;
        match self.codec.decode(&collected, len) {
            Ok(plain) => {
                self.out.extend_from_slice(&plain);
                self.cur += 1;
                if self.cur == self.segments.len() {
                    self.done = true;
                } else {
                    self.load_segment();
                }
            }
            Err(e) => self.fail(CloudError::transient(format!("decode failed: {e}"))),
        }
    }

    fn on_failure(
        &mut self,
        _cloud: CloudId,
        (slot, _block): (usize, BlockRef),
        error: CloudError,
        _now: Time,
    ) {
        self.inflight -= 1;
        if self.error.is_some() {
            self.done = self.inflight == 0;
            return;
        }
        // Hard failure: try a fallback block for the same share slot.
        match self.fallback.pop() {
            Some(b) => self.pending.push((slot, b)),
            None => self.fail(error),
        }
    }
}

impl MultiCloudBenchmark {
    /// Creates the baseline with the given redundancy and 4 MB fixed
    /// segments.
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        redundancy: RedundancyConfig,
        connections: usize,
    ) -> Self {
        let codec = Arc::new(Codec::for_config(&redundancy).expect("validated config"));
        MultiCloudBenchmark {
            rt,
            clouds,
            redundancy,
            codec,
            connections: connections.max(1),
            chunk_size: 4 * 1024 * 1024,
            retry: RetryPolicy::new(),
            obs: Obs::noop(),
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// Chunk size override (tests use smaller segments).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1024);
        self
    }

    /// Observability for transfer counters and retry traces
    /// (`bench.upload.*`, `bench.download.*`).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn engine_params(&self, label: &str, batch_span: Option<SpanId>) -> EngineParams {
        EngineParams {
            connections_per_cloud: self.connections,
            retry: self.retry.clone(),
            obs: self.obs.clone(),
            label: label.to_owned(),
            probe: None,
            idle_wait: None,
            batch_span,
            watchdog: None,
        }
    }

    /// Uploads `data`: fixed-size segments, each erasure-coded into
    /// exactly the normal parity blocks, each cloud receiving its fair
    /// share — statically, with no reaction to cloud speed.
    ///
    /// Like DepSky/RACS writes, the operation *reports* the time at
    /// which every segment had `k` blocks acknowledged (the data is
    /// then durable and readable); pushing the remaining fair-share
    /// blocks continues before the call returns but is not counted —
    /// mirroring how the paper measures UniDrive's *available time*.
    ///
    /// # Errors
    ///
    /// The first block failure after retries (a failed block is retried
    /// with a second full backoff round; only persistent failure
    /// surfaces).
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let t0 = self.rt.now();
        let n = self.clouds.len();
        let k = self.codec.k();
        let fair = self.redundancy.fair_share();
        let seg_count = data.chunks(self.chunk_size).count().max(1);
        let mut segments = Vec::new();
        // Static plan: per cloud, the queue of (segment, path, bytes).
        let mut queues: Vec<VecDeque<BenchBlock>> =
            (0..n).map(|_| VecDeque::new()).collect();
        for (si, chunk) in data.chunks(self.chunk_size).enumerate() {
            let id = SegmentId(unidrive_crypto::Sha1::digest(chunk));
            let mut blocks = Vec::new();
            for i in 0..(fair * n) as u16 {
                let cloud = (i as usize) % n;
                queues[cloud].push_back(BenchBlock {
                    si,
                    path: block_path(&id, i),
                    bytes: self.codec.encode_block(chunk, i as usize),
                    requeued: false,
                });
                blocks.push(BlockRef {
                    index: i,
                    cloud: cloud as u16,
                });
            }
            segments.push((id, chunk.len() as u64, blocks));
        }
        let policy = BenchUploadPolicy::new(queues, seg_count, k, t0);
        let mut batch = self.obs.span("engine.batch", None);
        batch.attr_str("label", "bench.upload");
        batch.attr_u64("segments", seg_count as u64);
        let done = TransferEngine::start(
            &self.rt,
            &self.clouds,
            self.engine_params("bench.upload", batch.id()),
            policy,
        )
        .join();
        batch.end();
        match (done.available, done.error) {
            // Availability reached: later failures only degrade
            // reliability, not the reported metric.
            (Some(d), _) => {
                self.manifest.lock().insert(name.to_owned(), segments);
                Ok(d)
            }
            (None, Some(e)) => Err(e),
            (None, None) => Ok(self.rt.now().saturating_duration_since(t0)),
        }
    }

    /// Downloads `name` by statically fetching the first `k` blocks of
    /// every segment (one per cloud, round-robin) — no reassignment if a
    /// chosen cloud happens to be slow, which is precisely the behaviour
    /// UniDrive's dynamic scheduling improves on. Falls back to the
    /// remaining blocks only on hard errors.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] for unknown names, or a block failure
    /// when fallbacks are exhausted.
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        let segments = self
            .manifest
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| CloudError::not_found(name))?;
        let t0 = self.rt.now();
        let seg_count = segments.len();
        let policy = BenchDownloadPolicy::new(segments, Arc::clone(&self.codec), self.codec.k());
        let mut batch = self.obs.span("engine.batch", None);
        batch.attr_str("label", "bench.download");
        batch.attr_u64("segments", seg_count as u64);
        let done = TransferEngine::start(
            &self.rt,
            &self.clouds,
            self.engine_params("bench.download", batch.id()),
            policy,
        )
        .join();
        batch.end();
        if let Some(e) = done.error {
            return Err(e);
        }
        Ok((self.rt.now().saturating_duration_since(t0), done.out))
    }

    /// Known block locations of `name` (for harnesses that kill clouds).
    pub fn manifest_of(&self, name: &str) -> Option<SegmentManifest> {
        self.manifest.lock().get(name).cloned()
    }

    /// Adopts a manifest produced by another client over the same
    /// backing clouds (the sink side of a sync notification).
    pub fn adopt_manifest(&self, name: &str, manifest: SegmentManifest) {
        self.manifest.lock().insert(name.to_owned(), manifest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_sim::SimRuntime;

    fn set(sim: &Arc<SimRuntime>, rates: &[f64]) -> (CloudSet, Vec<Arc<SimCloud>>) {
        let mut handles = Vec::new();
        let members = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let c = Arc::new(SimCloud::new(
                    sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(r, r * 5.0),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        (CloudSet::new(members), handles)
    }

    fn content(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn round_trip() {
        let sim = SimRuntime::new(1);
        let (clouds, _) = set(&sim, &[1e6; 5]);
        let client = MultiCloudBenchmark::new(
            sim.clone().as_runtime(),
            clouds,
            RedundancyConfig::paper_default(),
            3,
        )
        .with_chunk_size(128 * 1024);
        let data = content(500_000);
        client.upload("f", data.clone()).unwrap();
        let (_, restored) = client.download("f").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn survives_up_to_n_minus_kr_outages() {
        let sim = SimRuntime::new(2);
        let (clouds, handles) = set(&sim, &[1e6; 5]);
        let client = MultiCloudBenchmark::new(
            sim.clone().as_runtime(),
            clouds,
            RedundancyConfig::paper_default(),
            3,
        )
        .with_chunk_size(128 * 1024);
        let data = content(300_000);
        client.upload("f", data.clone()).unwrap();
        handles[0].set_available(false);
        handles[2].set_available(false);
        let (_, restored) = client.download("f").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn upload_availability_waits_for_statically_chosen_clouds() {
        // The benchmark's weakness vs UniDrive: with exactly one block
        // per cloud and no over-provisioning, a segment becomes
        // available only when the k-th fastest cloud delivers. UniDrive
        // would mint extra blocks on the two fast clouds instead.
        let sim = SimRuntime::new(3);
        let (clouds, _) = set(&sim, &[10e6, 10e6, 0.5e6, 0.5e6, 0.5e6]);
        let client = MultiCloudBenchmark::new(
            sim.clone().as_runtime(),
            clouds,
            RedundancyConfig::paper_default(),
            3,
        )
        .with_chunk_size(512 * 1024);
        let data = content(3_000_000); // 6 segments, block ~171 KB
        let took = client.upload("f", data).unwrap();
        // The third block of each segment comes from a slow cloud
        // (6 blocks of ~171 KB over 3 connections at 0.5 MB/s each
        // ≈ 0.7 s) while the two fast clouds idle after ~35 ms.
        assert!(took.as_secs_f64() > 0.5, "took {took:?}");
    }
}
