//! # unidrive-sim
//!
//! Deterministic virtual-time runtime used throughout the UniDrive
//! reproduction (Middleware 2015).
//!
//! The UniDrive paper evaluates its multi-cloud sync client against five
//! commercial consumer cloud storage services from globally distributed
//! PlanetLab and EC2 nodes. This crate supplies the substitute substrate:
//! an engine under which the *unchanged* client code — real threads, real
//! blocking calls — executes against simulated network links whose
//! bandwidth fluctuates the way the paper measured, while a month of
//! experiments finishes in milliseconds.
//!
//! Two [`Runtime`] implementations exist:
//!
//! * [`SimRuntime`] — virtual time; threads are *actors* and time advances
//!   only when all actors are blocked. Network transfers are analytic
//!   flows with processor-sharing bandwidth ([`LinkProfile`]).
//! * [`RealRuntime`] — wall-clock time; used when syncing real
//!   directories in the examples.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use unidrive_sim::{spawn, LinkProfile, Runtime, SimRuntime};
//!
//! let sim = SimRuntime::new(7);
//! // 1 MB/s per connection, 2 MB/s aggregate.
//! let link = sim.add_link(LinkProfile::steady(1e6, 2e6));
//! let rt = sim.clone().as_runtime();
//!
//! let sim2 = sim.clone();
//! let t = spawn(&rt, "uploader", move || {
//!     sim2.transfer(link, 4_000_000).unwrap(); // 4 MB at 1 MB/s
//!     sim2.now()
//! });
//! assert_eq!(t.join().as_secs_f64(), 4.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod link;
mod real;
mod rng;
mod runtime;
pub mod shard;
mod time;

pub use engine::{SimRuntime, TransferError};
pub use link::{LinkId, LinkProfile};
pub use real::RealRuntime;
pub use rng::{SimRng, SplitMix64};
pub use runtime::{spawn, Notifier, Runtime, RuntimeHandle, Semaphore, SimQueue, Task};
pub use time::Time;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn virtual_sleep_advances_clock_instantly() {
        let sim = SimRuntime::new(1);
        let wall = std::time::Instant::now();
        sim.sleep(Duration::from_secs(86_400));
        assert_eq!(sim.now(), Time::from_secs(86_400));
        assert!(wall.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn sleepers_wake_in_deadline_order() {
        let sim = SimRuntime::new(2);
        let rt = sim.clone().as_runtime();
        let order = Arc::new(unidrive_util::sync::Mutex::new(Vec::new()));
        let mut tasks = Vec::new();
        for (name, secs) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let rt2 = rt.clone();
            let order2 = Arc::clone(&order);
            tasks.push(spawn(&rt, name, move || {
                rt2.sleep(Duration::from_secs(secs));
                order2.lock().push(secs);
            }));
        }
        for t in tasks {
            t.join();
        }
        assert_eq!(*order.lock(), vec![10, 20, 30]);
    }

    #[test]
    fn two_flows_share_aggregate_capacity() {
        let sim = SimRuntime::new(3);
        // per-conn 2 MB/s, aggregate 2 MB/s: two flows get 1 MB/s each.
        let link = sim.add_link(LinkProfile::steady(2e6, 2e6));
        let rt = sim.clone().as_runtime();
        let mut tasks = Vec::new();
        for i in 0..2 {
            let sim2 = sim.clone();
            tasks.push(spawn(&rt, &format!("flow{i}"), move || {
                sim2.transfer(link, 2_000_000).unwrap();
                sim2.now()
            }));
        }
        for t in tasks {
            // 2 MB at 1 MB/s (shared) = 2 s.
            assert_eq!(t.join().as_secs_f64(), 2.0);
        }
    }

    #[test]
    fn flow_speeds_up_when_competitor_finishes() {
        let sim = SimRuntime::new(4);
        let link = sim.add_link(LinkProfile::steady(2e6, 2e6));
        let rt = sim.clone().as_runtime();
        let sim_a = sim.clone();
        let a = spawn(&rt, "small", move || {
            sim_a.transfer(link, 1_000_000).unwrap();
            sim_a.now()
        });
        let sim_b = sim.clone();
        let b = spawn(&rt, "large", move || {
            sim_b.transfer(link, 3_000_000).unwrap();
            sim_b.now()
        });
        // Shared phase: both at 1 MB/s. Small (1 MB) done at t=1.
        assert_eq!(a.join().as_secs_f64(), 1.0);
        // Large: 1 MB in shared phase, 2 MB remaining alone at 2 MB/s => t=2.
        assert_eq!(b.join().as_secs_f64(), 2.0);
    }

    #[test]
    fn disabled_link_rejects_transfers() {
        let sim = SimRuntime::new(5);
        let link = sim.add_link(LinkProfile::steady(1e6, 1e6));
        sim.set_link_enabled(link, false);
        assert_eq!(
            sim.transfer(link, 100).unwrap_err(),
            TransferError::LinkDisabled
        );
        sim.set_link_enabled(link, true);
        assert!(sim.transfer(link, 100).is_ok());
    }

    #[test]
    fn semaphore_timeout_elapses_in_virtual_time() {
        let sim = SimRuntime::new(6);
        let rt = sim.clone().as_runtime();
        let sem = rt.semaphore(0);
        let t0 = sim.now();
        assert!(!sem.acquire_timeout(Duration::from_secs(5)));
        assert_eq!(sim.now() - t0, Duration::from_secs(5));
    }

    #[test]
    fn semaphore_release_wakes_before_timeout() {
        let sim = SimRuntime::new(7);
        let rt = sim.clone().as_runtime();
        let sem = rt.semaphore(0);
        let sem2 = Arc::clone(&sem);
        let rt2 = rt.clone();
        let releaser = spawn(&rt, "releaser", move || {
            rt2.sleep(Duration::from_secs(1));
            sem2.release(1);
        });
        assert!(sem.acquire_timeout(Duration::from_secs(100)));
        assert_eq!(sim.now(), Time::from_secs(1));
        releaser.join();
    }

    #[test]
    fn notifier_wakes_waiters_in_fifo_order() {
        // Same shape twice: the wake (and therefore append) order of
        // parked waiters must be their registration order, every run.
        let run = |seed| {
            let sim = SimRuntime::new(seed);
            let rt = sim.clone().as_runtime();
            let cell = rt.notifier();
            let order = Arc::new(unidrive_util::sync::Mutex::new(Vec::new()));
            let mut tasks = Vec::new();
            for i in 0..8u32 {
                let cell2 = Arc::clone(&cell);
                let order2 = Arc::clone(&order);
                tasks.push(spawn(&rt, &format!("w{i}"), move || {
                    let seen = cell2.generation();
                    cell2.wait(seen);
                    order2.lock().push(i);
                }));
            }
            // Broadcast from an actor behind a virtual-time sleep:
            // virtual time only advances once every waiter is parked,
            // so the single broadcast is guaranteed to find all eight
            // registered, in spawn order.
            let cell3 = Arc::clone(&cell);
            let rt2 = rt.clone();
            tasks.push(spawn(&rt, "poker", move || {
                rt2.sleep(Duration::from_secs(1));
                cell3.notify_all();
            }));
            for t in tasks {
                t.join();
            }
            Arc::try_unwrap(order).unwrap().into_inner()
        };
        assert_eq!(run(41), (0..8).collect::<Vec<_>>());
        assert_eq!(run(42), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn notifier_never_loses_a_wakeup() {
        // A broadcast that lands between reading the generation and
        // calling wait() must make wait() return immediately.
        let sim = SimRuntime::new(43);
        let rt = sim.clone().as_runtime();
        let cell = rt.notifier();
        let seen = cell.generation();
        cell.notify_all(); // no waiters parked: only the generation moves
        cell.wait(seen); // must not block — a block here would deadlock
        assert_eq!(cell.generation(), seen + 1);
    }

    #[test]
    fn notifier_timeout_elapses_in_virtual_time() {
        let sim = SimRuntime::new(44);
        let rt = sim.clone().as_runtime();
        let cell = rt.notifier();
        let t0 = sim.now();
        assert!(!cell.wait_timeout(cell.generation(), Duration::from_secs(3)));
        assert_eq!(sim.now() - t0, Duration::from_secs(3));
    }

    #[test]
    fn notifier_broadcast_wakes_before_timeout() {
        let sim = SimRuntime::new(45);
        let rt = sim.clone().as_runtime();
        let cell = rt.notifier();
        let cell2 = Arc::clone(&cell);
        let rt2 = rt.clone();
        let notifier = spawn(&rt, "notifier", move || {
            rt2.sleep(Duration::from_secs(2));
            cell2.notify_all();
        });
        assert!(cell.wait_timeout(cell.generation(), Duration::from_secs(100)));
        assert_eq!(sim.now(), Time::from_secs(2));
        notifier.join();
    }

    #[test]
    fn notifier_works_under_real_runtime() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let cell = rt.notifier();
        let seen = cell.generation();
        cell.notify_all();
        cell.wait(seen); // already notified: returns immediately
        assert!(!cell.wait_timeout(cell.generation(), Duration::from_millis(10)));
        let seen = cell.generation();
        let cell2 = Arc::clone(&cell);
        let t = spawn(&rt, "poker", move || cell2.notify_all());
        cell.wait(seen); // robust whether the poker beats us here or not
        t.join();
    }

    #[test]
    fn queue_delivers_across_actors() {
        let sim = SimRuntime::new(8);
        let rt = sim.clone().as_runtime();
        let q: SimQueue<u32> = SimQueue::new(&rt);
        let q2 = q.clone();
        let rt2 = rt.clone();
        let producer = spawn(&rt, "producer", move || {
            for i in 0..10 {
                rt2.sleep(Duration::from_millis(10));
                q2.push(i);
            }
        });
        let got: Vec<u32> = (0..10).map(|_| q.pop()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        producer.join();
    }

    #[test]
    fn latency_is_charged_per_request() {
        let sim = SimRuntime::new(9);
        let profile = LinkProfile::steady(1e6, 1e6)
            .with_latency(Duration::from_millis(100), Duration::ZERO);
        let link = sim.add_link(profile);
        let t0 = sim.now();
        sim.transfer(link, 0).unwrap(); // pure-latency metadata op
        assert_eq!(sim.now() - t0, Duration::from_millis(100));
        sim.transfer(link, 1_000_000).unwrap();
        assert_eq!(sim.now() - t0, Duration::from_millis(100 + 100 + 1000));
    }

    #[test]
    fn fluctuating_link_changes_transfer_times() {
        let sim = SimRuntime::new(10);
        let profile = LinkProfile::new(1e6, 5e6)
            .with_fluctuation(0.8, 0.1)
            .with_epoch(Duration::from_secs(30))
            .with_latency(Duration::ZERO, Duration::ZERO);
        let link = sim.add_link(profile);
        let mut times = Vec::new();
        for _ in 0..20 {
            let t0 = sim.now();
            sim.transfer(link, 8_000_000).unwrap();
            times.push((sim.now() - t0).as_secs_f64());
            sim.sleep(Duration::from_secs(120));
        }
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.5, "expected fluctuation, min {min} max {max}");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let sim = SimRuntime::new(seed);
            let profile = LinkProfile::new(1e6, 5e6).with_fluctuation(0.6, 0.05);
            let link = sim.add_link(profile);
            let mut trace = Vec::new();
            for _ in 0..10 {
                let t0 = sim.now();
                sim.transfer(link, 4_000_000).unwrap();
                trace.push((sim.now() - t0).as_nanos());
                sim.sleep(Duration::from_secs(600));
            }
            trace
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn tasks_join_with_results() {
        let sim = SimRuntime::new(11);
        let rt = sim.clone().as_runtime();
        let tasks: Vec<_> = (0..8u64)
            .map(|i| {
                let rt2 = rt.clone();
                spawn(&rt, &format!("t{i}"), move || {
                    rt2.sleep(Duration::from_secs(i));
                    i * 2
                })
            })
            .collect();
        let total: u64 = tasks.into_iter().map(|t| t.join()).sum();
        assert_eq!(total, (0..8).map(|i| i * 2).sum());
    }

    #[test]
    fn many_concurrent_actors_make_progress() {
        let sim = SimRuntime::new(12);
        let link = sim.add_link(LinkProfile::steady(1e6, 4e6));
        let rt = sim.clone().as_runtime();
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                let sim2 = sim.clone();
                spawn(&rt, &format!("w{i}"), move || {
                    for _ in 0..5 {
                        sim2.transfer(link, 500_000).unwrap();
                    }
                })
            })
            .collect();
        for t in tasks {
            t.join();
        }
        // 32 workers * 5 transfers * 0.5 MB = 80 MB at 4 MB/s aggregate
        // >= 20 s total (per-conn limits can only slow it down).
        assert!(sim.now().as_secs_f64() >= 20.0);
    }
}
