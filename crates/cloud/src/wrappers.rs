//! Composable decorators over any [`CloudStore`].
//!
//! * [`ChaosCloud`](crate::ChaosCloud) (in [`fault`](crate::fault)) —
//!   deterministic scheduled fault injection over any store.
//! * [`ThrottledCloud`] — token-bucket bandwidth limiting under any
//!   [`Runtime`]; gives the real-directory examples cloud-like speeds.
//! * [`CountingCloud`] — traffic and operation accounting used by the
//!   overhead experiments (Table 3, Fig. 13).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unidrive_sim::Runtime;
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::{CloudError, CloudOp, CloudStore, ObjectInfo, TrafficSnapshot};

/// Wraps a store, limiting payload throughput with a token bucket.
///
/// Tokens are bytes; the bucket refills at `bytes_per_sec` and holds at
/// most one second of burst. Requests sleep on the wrapped [`Runtime`]
/// until enough tokens accumulate, so this works under both wall-clock
/// and virtual time.
pub struct ThrottledCloud {
    inner: Arc<dyn CloudStore>,
    rt: Arc<dyn Runtime>,
    bytes_per_sec: f64,
    bucket: Mutex<Bucket>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: unidrive_sim::Time,
}

impl std::fmt::Debug for ThrottledCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThrottledCloud")
            .field("inner", &self.inner.name())
            .field("bytes_per_sec", &self.bytes_per_sec)
            .finish()
    }
}

impl ThrottledCloud {
    /// Wraps `inner` with a `bytes_per_sec` payload rate limit.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(inner: Arc<dyn CloudStore>, rt: Arc<dyn Runtime>, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        let now = rt.now();
        ThrottledCloud {
            inner,
            rt,
            bytes_per_sec,
            bucket: Mutex::new(Bucket {
                tokens: bytes_per_sec, // one second of initial burst
                last_refill: now,
            }),
        }
    }

    fn consume(&self, bytes: u64) {
        let mut need = bytes as f64;
        loop {
            let wait = {
                let mut b = self.bucket.lock();
                let now = self.rt.now();
                let elapsed = now.saturating_duration_since(b.last_refill);
                b.tokens = (b.tokens + elapsed.as_secs_f64() * self.bytes_per_sec)
                    .min(self.bytes_per_sec);
                b.last_refill = now;
                if b.tokens >= need {
                    b.tokens -= need;
                    return;
                }
                need -= b.tokens;
                b.tokens = 0.0;
                Duration::from_secs_f64(need / self.bytes_per_sec)
            };
            self.rt.sleep(wait);
            // After sleeping the bucket will have refilled enough; loop to
            // account for it exactly.
        }
    }
}

impl CloudStore for ThrottledCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        self.consume(data.len() as u64);
        self.inner
            .upload(path, data)
            .map_err(|e| e.with_op_context(CloudOp::Upload, path))
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let data = self
            .inner
            .download(path)
            .map_err(|e| e.with_op_context(CloudOp::Download, path))?;
        self.consume(data.len() as u64);
        Ok(data)
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.inner
            .create_dir(path)
            .map_err(|e| e.with_op_context(CloudOp::CreateDir, path))
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.inner
            .list(path)
            .map_err(|e| e.with_op_context(CloudOp::List, path))
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.inner
            .delete(path)
            .map_err(|e| e.with_op_context(CloudOp::Delete, path))
    }

    fn caps(&self) -> crate::CloudCaps {
        // Shaping doesn't change semantics, but appends run through the
        // composed default (so both sub-ops are byte-accounted), never
        // the inner store's native path.
        crate::CloudCaps {
            native_append: false,
            ..self.inner.caps()
        }
    }
}

/// Wraps a store, counting operations and payload bytes.
///
/// [`SimCloud`](crate::SimCloud) counts its own traffic including
/// protocol overhead; `CountingCloud` is the backend-agnostic variant
/// used to account *payload* traffic for any store (and to attribute
/// traffic per client in multi-device experiments).
pub struct CountingCloud {
    inner: Arc<dyn CloudStore>,
    uploaded: AtomicU64,
    downloaded: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
}

impl std::fmt::Debug for CountingCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingCloud")
            .field("inner", &self.inner.name())
            .field("uploaded", &self.uploaded.load(Ordering::Relaxed))
            .field("downloaded", &self.downloaded.load(Ordering::Relaxed))
            .finish()
    }
}

impl CountingCloud {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: Arc<dyn CloudStore>) -> Self {
        CountingCloud {
            inner,
            uploaded: AtomicU64::new(0),
            downloaded: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            uploaded_bytes: self.uploaded.load(Ordering::Relaxed),
            downloaded_bytes: self.downloaded.load(Ordering::Relaxed),
            ok_requests: self.ok.load(Ordering::Relaxed),
            failed_requests: self.failed.load(Ordering::Relaxed),
        }
    }

    fn record<T>(&self, r: Result<T, CloudError>) -> Result<T, CloudError> {
        match &r {
            Ok(_) => self.ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        r
    }
}

impl CloudStore for CountingCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        let len = data.len() as u64;
        let r = self.record(
            self.inner
                .upload(path, data)
                .map_err(|e| e.with_op_context(CloudOp::Upload, path)),
        );
        if r.is_ok() {
            self.uploaded.fetch_add(len, Ordering::Relaxed);
        }
        r
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let r = self.record(
            self.inner
                .download(path)
                .map_err(|e| e.with_op_context(CloudOp::Download, path)),
        );
        if let Ok(data) = &r {
            self.downloaded.fetch_add(data.len() as u64, Ordering::Relaxed);
        }
        r
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.record(
            self.inner
                .create_dir(path)
                .map_err(|e| e.with_op_context(CloudOp::CreateDir, path)),
        )
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.record(
            self.inner
                .list(path)
                .map_err(|e| e.with_op_context(CloudOp::List, path)),
        )
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.record(
            self.inner
                .delete(path)
                .map_err(|e| e.with_op_context(CloudOp::Delete, path)),
        )
    }

    fn caps(&self) -> crate::CloudCaps {
        // Counting is transparent, but appends take the composed
        // default (both sub-ops counted), not the inner native path.
        crate::CloudCaps {
            native_append: false,
            ..self.inner.caps()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemCloud;
    use unidrive_sim::{RealRuntime, SimRuntime};

    fn mem() -> Arc<dyn CloudStore> {
        Arc::new(MemCloud::new("m"))
    }

    #[test]
    fn throttle_paces_virtual_time() {
        let sim = SimRuntime::new(13);
        let rt = sim.clone().as_runtime();
        let c = ThrottledCloud::new(mem(), rt, 1_000_000.0);
        let t0 = sim.now();
        // First MB rides the initial burst; next 2 MB take 2 s.
        for i in 0..3 {
            c.upload(&format!("f{i}"), Bytes::from(vec![0u8; 1_000_000]))
                .unwrap();
        }
        let elapsed = (sim.now() - t0).as_secs_f64();
        assert!((1.9..2.3).contains(&elapsed), "elapsed {elapsed}");
    }

    #[test]
    fn throttle_works_under_wall_clock() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let c = ThrottledCloud::new(mem(), Arc::clone(&rt), 10_000_000.0);
        let t0 = rt.now();
        // 10 MB burst + 10 MB at 10 MB/s ≈ 1 s.
        c.upload("a", Bytes::from(vec![0u8; 10_000_000])).unwrap();
        c.upload("b", Bytes::from(vec![0u8; 10_000_000])).unwrap();
        let took = (rt.now() - t0).as_secs_f64();
        assert!(took >= 0.9, "took {took}");
    }

    #[test]
    fn counting_cloud_tallies_payloads() {
        let c = CountingCloud::new(mem());
        c.upload("a", Bytes::from(vec![0u8; 100])).unwrap();
        let _ = c.download("a").unwrap();
        let _ = c.download("missing");
        let t = c.traffic();
        assert_eq!(t.uploaded_bytes, 100);
        assert_eq!(t.downloaded_bytes, 100);
        assert_eq!(t.ok_requests, 2);
        assert_eq!(t.failed_requests, 1);
    }

    /// Drives all five ops through a wrapper and checks they reach the
    /// shared inner store with results intact.
    fn all_five_ops_pass_through(wrapped: &dyn CloudStore, inner: &Arc<dyn CloudStore>) {
        wrapped.create_dir("d/sub").unwrap();
        wrapped
            .upload("d/f.bin", Bytes::from_static(b"payload"))
            .unwrap();
        assert_eq!(
            wrapped.download("d/f.bin").unwrap(),
            Bytes::from_static(b"payload")
        );
        let names: Vec<String> = wrapped
            .list("d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.contains(&"f.bin".to_owned()) && names.contains(&"sub".to_owned()));
        wrapped.delete("d/f.bin").unwrap();
        assert!(matches!(
            inner.download("d/f.bin"),
            Err(CloudError::NotFound { .. })
        ));
        // The directory created through the wrapper is on the inner store.
        assert!(inner.list("d/sub").is_ok());
    }

    #[test]
    fn throttled_cloud_passes_all_five_ops_through() {
        let sim = SimRuntime::new(21);
        let rt = sim.clone().as_runtime();
        let inner = mem();
        let c = ThrottledCloud::new(Arc::clone(&inner), Arc::clone(&rt), 1e9);
        all_five_ops_pass_through(&c, &inner);
        // Metadata ops are unthrottled: they consume no tokens and no
        // virtual time.
        let t0 = sim.now();
        c.create_dir("meta").unwrap();
        c.list("").unwrap();
        c.delete("meta").unwrap();
        assert_eq!((sim.now() - t0).as_secs_f64(), 0.0);
    }

    #[test]
    fn counting_cloud_passes_all_five_ops_through() {
        let inner = mem();
        let c = CountingCloud::new(Arc::clone(&inner));
        all_five_ops_pass_through(&c, &inner);
        let t = c.traffic();
        assert_eq!(t.ok_requests, 5);
        assert_eq!(t.failed_requests, 0);
        assert_eq!(t.uploaded_bytes, 7);
        assert_eq!(t.downloaded_bytes, 7);
    }
}
