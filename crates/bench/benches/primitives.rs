//! Micro-benchmarks of the from-scratch primitives: GF(2⁸)
//! Reed-Solomon coding, SHA-1, DES-CBC, Rabin chunking, and the
//! metadata codec — the CPU budget behind every simulated second.
//!
//! Uses the in-tree `microbench` harness (`cargo bench --bench
//! primitives`); no external benchmarking crate so the workspace
//! builds offline.

use unidrive_bench::microbench::run;
use unidrive_chunker::{segment_bytes, ChunkerConfig, RabinHash};
use unidrive_crypto::{MetadataCipher, Sha1};
use unidrive_erasure::{Codec, RedundancyConfig};
use unidrive_meta::{SegmentId, Snapshot, SyncFolderImage};

fn sample(len: usize) -> Vec<u8> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn bench_reed_solomon() {
    let codec = Codec::for_config(&RedundancyConfig::paper_default()).expect("codec");
    for size in [64 * 1024, 1024 * 1024, 4 * 1024 * 1024] {
        let data = sample(size);
        let mut index = 0usize;
        run(&format!("reed_solomon/encode_block/{size}"), 20, size, || {
            index = (index + 1) % 10;
            codec.encode_block(&data, index)
        });
        let blocks = codec.encode_blocks(&data, &[0, 4, 9]);
        let shares: Vec<(usize, &[u8])> = [0usize, 4, 9]
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        run(&format!("reed_solomon/decode/{size}"), 20, size, || {
            codec.decode(&shares, size).expect("decode")
        });
    }
}

fn bench_sha1() {
    for size in [64 * 1024, 4 * 1024 * 1024] {
        let data = sample(size);
        run(&format!("sha1/digest/{size}"), 30, size, || {
            Sha1::digest(&data)
        });
    }
}

fn bench_des_cbc() {
    let cipher = MetadataCipher::from_passphrase("bench");
    for size in [16 * 1024, 256 * 1024] {
        let data = sample(size);
        run(&format!("des_cbc/encrypt/{size}"), 20, size, || {
            cipher.encrypt(&data, 7)
        });
        let ct = cipher.encrypt(&data, 7);
        run(&format!("des_cbc/decrypt/{size}"), 20, size, || {
            cipher.decrypt(&ct).expect("decrypt")
        });
    }
}

fn bench_chunker() {
    let data = sample(8 * 1024 * 1024);
    let config = ChunkerConfig::new(1024 * 1024);
    run("chunker/segment_8mb_theta_1mb", 20, data.len(), || {
        segment_bytes(&data, &config)
    });
    let window = 48;
    run("chunker/rabin_roll_1mb", 20, 1024 * 1024, || {
        let mut h = RabinHash::new(window);
        for &byte in &data[..window] {
            h.push(byte);
        }
        let mut acc = 0u64;
        for i in window..1024 * 1024 {
            h.roll(data[i - window], data[i]);
            acc ^= h.fingerprint();
        }
        acc
    });
}

fn bench_metadata_codec() {
    let mut image = SyncFolderImage::new();
    for i in 0..1000 {
        let id = SegmentId(Sha1::digest(format!("seg-{i}").as_bytes()));
        image.ensure_segment(id, 100_000);
        image.upsert_file(
            &format!("dir/file-{i:04}.bin"),
            Snapshot {
                mtime_ns: i,
                size: 100_000,
                segments: vec![id],
            },
        );
    }
    let encoded = image.encode();
    run("metadata_codec/encode_1000_files", 30, encoded.len(), || {
        image.encode()
    });
    run("metadata_codec/decode_1000_files", 30, encoded.len(), || {
        SyncFolderImage::decode(&encoded).expect("decode")
    });
}

fn main() {
    bench_reed_solomon();
    bench_sha1();
    bench_des_cbc();
    bench_chunker();
    bench_metadata_codec();
}
