//! **Figure 10** — hourly variation over one day transferring the large
//! file on the Virginia node (§7.2): UniDrive is faster *and far more
//! stable* over time than the fastest single CCS there, whose
//! performance swings with network fluctuation.

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::SingleCloudClient;
use unidrive_bench::{systems_at, ExperimentScale};
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{random_bytes, site_by_name, Provider, Summary, TextTable};

fn main() {
    let scale = ExperimentScale::from_args();
    let size = scale.large_file;
    let site = site_by_name("Virginia").expect("site exists");
    let sim = SimRuntime::new(1010);
    let sys = systems_at(&sim, site, scale.theta);
    // OneDrive is the paper's comparison point at Virginia.
    let onedrive_cloud = sys
        .clouds
        .iter()
        .find(|(_, c)| c.name() == Provider::OneDrive.name())
        .map(|(_, c)| Arc::clone(c))
        .expect("OneDrive present");
    let onedrive = SingleCloudClient::new(sim.clone().as_runtime(), onedrive_cloud, 5);
    let data = random_bytes(size, 10);

    println!(
        "Figure 10: hourly {} MB upload seconds over one day, Virginia\n",
        size / (1024 * 1024)
    );
    let mut table = TextTable::new(&["hour", "UniDrive", "OneDrive"]);
    let mut uni = Vec::new();
    let mut one = Vec::new();
    for hour in 0..24 {
        let name = format!("h{hour}");
        let u = sys.unidrive.upload(&name, data.clone());
        let o = onedrive.upload(&name, data.clone());
        let mut cells = vec![format!("{hour:02}")];
        match u {
            Ok(d) => {
                uni.push(d.as_secs_f64());
                cells.push(format!("{:.1}", d.as_secs_f64()));
            }
            Err(_) => cells.push("fail".into()),
        }
        match o {
            Ok(d) => {
                one.push(d.as_secs_f64());
                cells.push(format!("{:.1}", d.as_secs_f64()));
            }
            Err(_) => cells.push("fail".into()),
        }
        table.row(cells);
        sim.sleep(Duration::from_secs(3600));
    }
    println!("{}", table.render());
    let (u, o) = (
        Summary::of(&uni).expect("samples"),
        Summary::of(&one).expect("samples"),
    );
    println!(
        "UniDrive: mean {:.1}s, max/min {:.1}x | OneDrive: mean {:.1}s, max/min {:.1}x",
        u.mean,
        u.max_over_min(),
        o.mean,
        o.max_over_min()
    );
    println!(
        "(paper: UniDrive higher and stable, OneDrive varies significantly; \
         coefficient of variation {:.2} vs {:.2})",
        u.std_dev() / u.mean,
        o.std_dev() / o.mean
    );
}
