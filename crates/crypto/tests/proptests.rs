//! Property-based tests of the from-scratch crypto primitives.

use proptest::prelude::*;
use unidrive_crypto::{Des, MetadataCipher, Sha1};

proptest! {
    /// DES decrypt(encrypt(x)) == x for every key and block.
    #[test]
    fn des_round_trips(key in any::<[u8; 8]>(), block in any::<[u8; 8]>()) {
        let des = Des::new(key);
        prop_assert_eq!(des.decrypt_block(des.encrypt_block(block)), block);
    }

    /// The DES complementation property holds for all inputs.
    #[test]
    fn des_complementation(key in any::<[u8; 8]>(), block in any::<[u8; 8]>()) {
        let not = |x: [u8; 8]| x.map(|b| !b);
        let a = Des::new(key).encrypt_block(block);
        let b = Des::new(not(key)).encrypt_block(not(block));
        prop_assert_eq!(not(a), b);
    }

    /// CBC round-trips arbitrary plaintext under arbitrary passphrases
    /// and nonces.
    #[test]
    fn cbc_round_trips(
        passphrase in "[a-zA-Z0-9 ]{0,32}",
        plaintext in proptest::collection::vec(any::<u8>(), 0..2048),
        nonce in any::<u64>(),
    ) {
        let cipher = MetadataCipher::from_passphrase(&passphrase);
        let ct = cipher.encrypt(&plaintext, nonce);
        prop_assert_eq!(cipher.decrypt(&ct).unwrap(), plaintext);
    }

    /// Ciphertext length is plaintext rounded up to the block plus IV,
    /// and always a multiple of 8.
    #[test]
    fn cbc_length_is_predictable(plaintext in proptest::collection::vec(any::<u8>(), 0..512)) {
        let cipher = MetadataCipher::from_passphrase("p");
        let ct = cipher.encrypt(&plaintext, 1);
        let pad = 8 - plaintext.len() % 8;
        prop_assert_eq!(ct.len(), 8 + plaintext.len() + pad);
        prop_assert_eq!(ct.len() % 8, 0);
    }

    /// Streaming SHA-1 equals one-shot SHA-1 under arbitrary splits.
    #[test]
    fn sha1_streaming_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        splits in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let mut h = Sha1::new();
        let mut cursor = 0usize;
        for s in splits {
            let next = (cursor + s as usize).min(data.len());
            h.update(&data[cursor..next]);
            cursor = next;
        }
        h.update(&data[cursor..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    /// Hex round-trip of digests.
    #[test]
    fn digest_hex_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d = Sha1::digest(&data);
        prop_assert_eq!(unidrive_crypto::Digest::from_hex(&d.to_hex()), Some(d));
    }
}
