//! [`ObservedCloud`]: the measurement decorator. Wraps any store,
//! times every one of the five Web API operations through a
//! [`Runtime`] clock, and feeds the outcomes to two consumers:
//!
//! * a [`CloudHealth`] tracker (EWMA latency, windowed error rate,
//!   availability state machine — see [`health`](crate::health)), and
//! * the obs windowed series (`cloud.op_ns`, `cloud.ops`, `cloud.err`,
//!   `cloud.bytes_up`, `cloud.bytes_down`, labeled by cloud name) so
//!   `--series-out` exports show per-cloud behavior over time.
//!
//! Stack it *outermost* (e.g. `SimCloud → ChaosCloud → ObservedCloud`)
//! so injected faults and simulated latency are part of what it
//! measures, exactly as a client-side prober would see them.
//!
//! `NotFound` counts as a *successful* probe: the provider answered;
//! the object simply isn't there. Every other error marks the op
//! failed.

use std::sync::Arc;

use unidrive_obs::{Obs, SeriesHandle, SeriesKind};
use unidrive_sim::Runtime;
use unidrive_util::bytes::Bytes;

use crate::health::CloudHealth;
use crate::{CloudError, CloudStore, ObjectInfo};

/// Measurement decorator over any [`CloudStore`]; see the module docs.
pub struct ObservedCloud {
    inner: Arc<dyn CloudStore>,
    rt: Arc<dyn Runtime>,
    health: Arc<CloudHealth>,
    op_ns: SeriesHandle,
    ops: SeriesHandle,
    err: SeriesHandle,
    bytes_up: SeriesHandle,
    bytes_down: SeriesHandle,
}

impl std::fmt::Debug for ObservedCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedCloud")
            .field("inner", &self.inner.name())
            .field("state", &self.health.state())
            .finish()
    }
}

impl ObservedCloud {
    /// Wraps `inner`, feeding `health` and the windowed series of
    /// `obs` (series handles resolve to no-ops unless the registry has
    /// series collection enabled; the handles hold everything needed,
    /// so `obs` itself is not retained).
    pub fn new(
        inner: Arc<dyn CloudStore>,
        rt: Arc<dyn Runtime>,
        health: Arc<CloudHealth>,
        obs: Obs,
    ) -> ObservedCloud {
        let label = inner.name().to_owned();
        ObservedCloud {
            op_ns: obs.series_handle("cloud.op_ns", &label, SeriesKind::Sample),
            ops: obs.series_handle("cloud.ops", &label, SeriesKind::Counter),
            err: obs.series_handle("cloud.err", &label, SeriesKind::Counter),
            bytes_up: obs.series_handle("cloud.bytes_up", &label, SeriesKind::Counter),
            bytes_down: obs.series_handle("cloud.bytes_down", &label, SeriesKind::Counter),
            inner,
            rt,
            health,
        }
    }

    /// The health tracker this wrapper feeds.
    pub fn health(&self) -> &Arc<CloudHealth> {
        &self.health
    }

    fn measure<T>(&self, run: impl FnOnce() -> Result<T, CloudError>) -> Result<T, CloudError> {
        let t0 = self.rt.now().as_nanos();
        let result = run();
        let t1 = self.rt.now().as_nanos();
        // NotFound is an answered probe, not a provider failure.
        let ok = matches!(&result, Ok(_) | Err(CloudError::NotFound { .. }));
        self.health.record(t1, t1.saturating_sub(t0), ok);
        self.op_ns.record(t1.saturating_sub(t0));
        self.ops.record(1);
        if !ok {
            self.err.record(1);
        }
        result
    }
}

impl CloudStore for ObservedCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        let len = data.len() as u64;
        let r = self.measure(|| {
            self.inner
                .upload(path, data)
                .map_err(|e| e.with_op_context(crate::CloudOp::Upload, path))
        });
        if r.is_ok() {
            self.bytes_up.record(len);
        }
        r
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let r = self.measure(|| {
            self.inner
                .download(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::Download, path))
        });
        if let Ok(data) = &r {
            self.bytes_down.record(data.len() as u64);
        }
        r
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.measure(|| {
            self.inner
                .create_dir(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::CreateDir, path))
        })
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.measure(|| {
            self.inner
                .list(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::List, path))
        })
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.measure(|| {
            self.inner
                .delete(path)
                .map_err(|e| e.with_op_context(crate::CloudOp::Delete, path))
        })
    }

    fn caps(&self) -> crate::CloudCaps {
        // Observation is transparent; appends run through the composed
        // default so both sub-ops are timed, hence not native.
        crate::CloudCaps {
            native_append: false,
            ..self.inner.caps()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthConfig, HealthState};
    use crate::{MemCloud, SimCloud, SimCloudConfig};
    use unidrive_obs::Registry;
    use unidrive_sim::SimRuntime;

    fn world() -> (Arc<SimRuntime>, Arc<dyn Runtime>) {
        let sim = SimRuntime::new(7);
        let rt = sim.clone().as_runtime();
        (sim, rt)
    }

    #[test]
    fn observed_cloud_passes_all_five_ops_and_scores_them() {
        let (_sim, rt) = world();
        let reg = Registry::new();
        reg.enable_series(1_000_000_000);
        let rt_clock = Arc::clone(&rt);
        reg.set_clock(move || rt_clock.now().as_nanos());
        let obs = Obs::with_registry(Arc::clone(&reg));

        let inner: Arc<dyn CloudStore> = Arc::new(MemCloud::new("m0"));
        let health = CloudHealth::new("m0", HealthConfig::default());
        let c = ObservedCloud::new(Arc::clone(&inner), rt, Arc::clone(&health), obs);

        c.create_dir("d").unwrap();
        c.upload("d/f", Bytes::from_static(b"abc")).unwrap();
        assert_eq!(c.download("d/f").unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(c.list("d").unwrap().len(), 1);
        c.delete("d/f").unwrap();
        // NotFound counts as an answered (ok) probe.
        assert!(matches!(c.download("d/f"), Err(CloudError::NotFound { .. })));

        health.finish(1);
        let t = health.tracker();
        assert_eq!(t.state(), HealthState::Healthy);
        assert_eq!(t.timeline()[0].ops, 6);
        assert_eq!(t.timeline()[0].errors, 0);

        let snap = reg.series_snapshot();
        let ops = snap.entry("cloud.ops", "m0").unwrap();
        assert_eq!(ops.windows[0].stat.sum, 6);
        assert_eq!(snap.entry("cloud.bytes_up", "m0").unwrap().windows[0].stat.sum, 3);
        assert_eq!(
            snap.entry("cloud.bytes_down", "m0").unwrap().windows[0].stat.sum,
            3
        );
        // No failures: the err cell exists (handles resolve eagerly)
        // but never saw a window.
        assert!(snap.entry("cloud.err", "m0").unwrap().windows.is_empty());
    }

    #[test]
    fn outage_window_degrades_health_and_recovery_restores_it() {
        let (sim, rt) = world();
        let sim_cloud = Arc::new(SimCloud::new(
            &sim,
            "c0",
            SimCloudConfig::steady(8e6, 8e6),
        ));
        let health = CloudHealth::new("c0", HealthConfig {
            window_ns: 1_000_000_000,
            ..HealthConfig::default()
        });
        let c = ObservedCloud::new(
            Arc::clone(&sim_cloud) as Arc<dyn CloudStore>,
            Arc::clone(&rt),
            Arc::clone(&health),
            Obs::noop(),
        );

        let step = std::time::Duration::from_millis(250);
        let mut probe = |n: usize| {
            for i in 0..n {
                let _ = c.upload(&format!("p{i}"), Bytes::from_static(b"x"));
                rt.sleep(step);
            }
        };
        probe(8); // two healthy windows
        sim_cloud.set_available(false);
        probe(8); // outage: every op fails
        sim_cloud.set_available(true);
        probe(16); // recovery: clean windows rebuild the streak
        health.finish(rt.now().as_nanos());

        let t = health.tracker();
        assert_eq!(t.state(), HealthState::Healthy, "{:?}", t.transitions());
        let states: Vec<HealthState> = t.transitions().iter().map(|x| x.to).collect();
        assert!(states.contains(&HealthState::Down), "{states:?}");
        assert_eq!(*states.last().unwrap(), HealthState::Healthy);
        assert!(t.timeline().iter().any(|w| w.err_rate > 0.9));
    }
}
