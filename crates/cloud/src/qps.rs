//! Per-cloud request-rate accounting for fleet-scale load.
//!
//! Consumer cloud APIs meter *requests*, not bytes: a fleet of 100k
//! devices hammering five providers hits per-cloud QPS ceilings long
//! before it saturates bandwidth. This module supplies the two pieces
//! the fleet simulator charges against:
//!
//! * [`TokenBucket`] — a deterministic virtual-clock shaper. Consuming
//!   more than the sustained rate returns the extra delay the caller
//!   must add to its operation, exactly the backpressure a 429/503
//!   retry-after loop produces in aggregate.
//! * [`QpsSeries`] — per-second operation counters, from which the
//!   bench reports peak and mean QPS per cloud.
//!
//! Both are pure integer arithmetic on virtual nanoseconds: no float
//! accumulation, no wall clock, so same-seed fleet runs reproduce the
//! same delays bit-for-bit in any shard or thread configuration.
//!
//! [`QpsShaper`] lifts the same bucket into the [`CloudStore`]
//! interface as a decorator, so a real HTTP backend and a `SimCloud`
//! are shaped by identical semantics.

use std::sync::Arc;
use std::time::Duration;

use unidrive_sim::Runtime;
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::{CloudError, CloudOp, CloudStore, ObjectInfo};

const NS_PER_SEC: u64 = 1_000_000_000;

/// A deterministic token-bucket shaper over virtual time.
///
/// Tokens are tracked in units of one operation, scaled by
/// `NS_PER_SEC` so refill math stays integral: `rate` ops/s refill
/// `rate` scaled-tokens per nanosecond-of-`rate`. The balance may go
/// negative (work is queued, not dropped); a negative balance maps to
/// the delay the next caller inherits.
///
/// # Examples
///
/// ```
/// use unidrive_cloud::TokenBucket;
///
/// let mut tb = TokenBucket::new(100, 10); // 100 ops/s, burst 10
/// assert_eq!(tb.consume(0, 10), 0);       // burst absorbs it
/// let delay = tb.consume(0, 100);         // 100 more ops immediately
/// assert_eq!(delay, 1_000_000_000);       // queued one second out
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    rate_per_sec: u64,
    /// Scaled tokens: 1 op = NS_PER_SEC scaled units.
    balance: i128,
    cap: i128,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket refilling `rate_per_sec` ops/s with `burst` ops of
    /// headroom, starting full at t = 0.
    pub fn new(rate_per_sec: u64, burst: u64) -> TokenBucket {
        let cap = burst.max(1) as i128 * NS_PER_SEC as i128;
        TokenBucket {
            rate_per_sec: rate_per_sec.max(1),
            balance: cap,
            cap,
            last_ns: 0,
        }
    }

    /// Consumes `ops` at virtual time `now_ns`; returns the delay in
    /// nanoseconds before the *last* of those ops clears the shaper
    /// (0 when the bucket has tokens). Calls must be made in
    /// non-decreasing `now_ns` order — the fleet's merged event stream
    /// guarantees that.
    pub fn consume(&mut self, now_ns: u64, ops: u64) -> u64 {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        let refill = elapsed as i128 * self.rate_per_sec as i128;
        self.balance = (self.balance + refill).min(self.cap);
        self.balance -= ops as i128 * NS_PER_SEC as i128;
        if self.balance >= 0 {
            0
        } else {
            // Deficit drains at rate_per_sec: delay = deficit / rate,
            // rounded up.
            let deficit = -self.balance as u128;
            (deficit.div_ceil(self.rate_per_sec as u128)) as u64
        }
    }

    /// The configured sustained rate, ops/s.
    pub fn rate_per_sec(&self) -> u64 {
        self.rate_per_sec
    }
}

/// Per-second operation counters for one cloud.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QpsSeries {
    buckets: Vec<u64>,
    total: u64,
}

impl QpsSeries {
    /// An empty series.
    pub fn new() -> QpsSeries {
        QpsSeries::default()
    }

    /// Records `ops` operations at virtual time `now_ns`.
    pub fn record(&mut self, now_ns: u64, ops: u64) {
        let sec = (now_ns / NS_PER_SEC) as usize;
        if sec >= self.buckets.len() {
            self.buckets.resize(sec + 1, 0);
        }
        self.buckets[sec] += ops;
        self.total += ops;
    }

    /// Records `ops` spread evenly over `[start_ns, end_ns)` — a
    /// transfer's requests are paced across its duration, not spiked
    /// at the start. Remainder ops land in the earliest seconds so the
    /// split is deterministic.
    pub fn record_spread(&mut self, start_ns: u64, end_ns: u64, ops: u64) {
        let s0 = (start_ns / NS_PER_SEC) as usize;
        let s1 = (end_ns.max(start_ns) / NS_PER_SEC) as usize;
        let secs = (s1 - s0 + 1) as u64;
        let per = ops / secs;
        let extra = (ops % secs) as usize;
        for (i, sec) in (s0..=s1).enumerate() {
            let n = per + u64::from(i < extra);
            if n > 0 {
                self.record(sec as u64 * NS_PER_SEC, n);
            }
        }
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Highest single-second rate observed.
    pub fn peak(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// Mean ops/s over the recorded span (zero-filled seconds count).
    pub fn mean(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total as f64 / self.buckets.len() as f64
        }
    }

    /// Number of seconds spanned.
    pub fn span_secs(&self) -> usize {
        self.buckets.len()
    }
}

/// A [`CloudStore`] decorator charging every operation against a
/// shared per-cloud [`TokenBucket`] — the same request-rate model the
/// fleet simulator charges, lifted into the store interface so sim
/// *and* HTTP backends share one throttling semantic.
///
/// Each of the five ops (and `append`, as one op) costs one token;
/// when the bucket is in deficit the caller sleeps the shaper's delay
/// on the wrapped [`Runtime`] before the request is issued — under
/// virtual time this is deterministic backpressure, under wall clock
/// it is real client-side pacing, exactly what a provider's
/// 429/Retry-After loop converges to. Contrast with
/// [`ThrottledCloud`](crate::ThrottledCloud), which meters *bytes*.
pub struct QpsShaper {
    inner: Arc<dyn CloudStore>,
    rt: Arc<dyn Runtime>,
    bucket: Mutex<TokenBucket>,
}

impl std::fmt::Debug for QpsShaper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QpsShaper")
            .field("inner", &self.inner.name())
            .field("rate_per_sec", &self.bucket.lock().rate_per_sec())
            .finish()
    }
}

impl QpsShaper {
    /// Wraps `inner`, limiting it to `rate_per_sec` requests per
    /// second with `burst` requests of headroom.
    pub fn new(
        inner: Arc<dyn CloudStore>,
        rt: Arc<dyn Runtime>,
        rate_per_sec: u64,
        burst: u64,
    ) -> QpsShaper {
        QpsShaper {
            inner,
            rt,
            bucket: Mutex::new(TokenBucket::new(rate_per_sec, burst)),
        }
    }

    /// Charges one op and sleeps out any shaper delay.
    fn charge(&self) {
        // The bucket requires non-decreasing timestamps; the lock
        // serializes concurrent callers and `max` in `consume` absorbs
        // any inversion between `now()` and lock acquisition.
        let delay_ns = {
            let mut bucket = self.bucket.lock();
            bucket.consume(self.rt.now().as_nanos(), 1)
        };
        if delay_ns > 0 {
            self.rt.sleep(Duration::from_nanos(delay_ns));
        }
    }
}

impl CloudStore for QpsShaper {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        self.charge();
        self.inner
            .upload(path, data)
            .map_err(|e| e.with_op_context(CloudOp::Upload, path))
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        self.charge();
        self.inner
            .download(path)
            .map_err(|e| e.with_op_context(CloudOp::Download, path))
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.charge();
        self.inner
            .create_dir(path)
            .map_err(|e| e.with_op_context(CloudOp::CreateDir, path))
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.charge();
        self.inner
            .list(path)
            .map_err(|e| e.with_op_context(CloudOp::List, path))
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.charge();
        self.inner
            .delete(path)
            .map_err(|e| e.with_op_context(CloudOp::Delete, path))
    }

    fn append(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        // One metered request, delegated so a native inner append stays
        // native (providers meter append as a single call too).
        self.charge();
        self.inner.append(path, data)
    }

    fn caps(&self) -> crate::CloudCaps {
        // Append is delegated verbatim, so capabilities pass through.
        self.inner.caps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_burst_then_shapes() {
        let mut tb = TokenBucket::new(1000, 100);
        assert_eq!(tb.consume(0, 100), 0); // burst
        // 1000 more ops with an empty bucket: one second of queue.
        assert_eq!(tb.consume(0, 1000), NS_PER_SEC);
        // After 2 virtual seconds the queue has drained and refilled
        // to cap, so a small consume is free again.
        assert_eq!(tb.consume(2 * NS_PER_SEC, 50), 0);
    }

    #[test]
    fn bucket_refill_caps_at_burst() {
        let mut tb = TokenBucket::new(10, 5);
        assert_eq!(tb.consume(0, 5), 0);
        // A year of idle time cannot build more than `burst` credit.
        assert_eq!(tb.consume(NS_PER_SEC * 3_000_000, 5), 0);
        assert!(tb.consume(NS_PER_SEC * 3_000_000, 6) > 0);
    }

    #[test]
    fn bucket_delay_is_deterministic_and_monotone() {
        let run = || {
            let mut tb = TokenBucket::new(250, 10);
            (0..50u64).map(|i| tb.consume(i * 10_000_000, 7)).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        // Sustained overload: delays grow.
        assert!(a.last().unwrap() > a.first().unwrap());
    }

    #[test]
    fn series_peak_mean_and_spread() {
        let mut s = QpsSeries::new();
        s.record(0, 10);
        s.record(NS_PER_SEC + 1, 30);
        assert_eq!(s.total(), 40);
        assert_eq!(s.peak(), 30);
        assert_eq!(s.span_secs(), 2);
        assert!((s.mean() - 20.0).abs() < 1e-9);

        let mut sp = QpsSeries::new();
        sp.record_spread(0, 3 * NS_PER_SEC, 10);
        // 4 seconds touched: 3 + remainder 2 in the earliest buckets.
        assert_eq!(sp.total(), 10);
        assert_eq!(sp.peak(), 3);
    }
}
