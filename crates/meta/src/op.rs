//! Oplog metadata plane model: append-only [`MetaOp`] records and
//! their deterministic fold into a [`SyncFolderImage`].
//!
//! Where the lock plane serializes writers behind one quorum lock over
//! the whole image, the oplog plane lets every device append serialized
//! ops to its **own** per-device op file on every cloud (the device is
//! the file's only writer, so appends never race). Readers collect all
//! visible op files, dedup ops by their deterministic id — derived from
//! `(folder, device, seq)` — and fold them over the compacted base in
//! the total `(lamport, device, seq)` order, so every reader that sees
//! the same op set computes byte-identical metadata (strong eventual
//! consistency, in the style of log-replicated sync engines).
//!
//! Conflicts between ops that raced in the log (neither writer had
//! folded the other's op, detected via `base_lamport`) resolve with the
//! existing rename-on-conflict policy: the later op in the total order
//! wins the slot and the loser is retained as a conflict copy, exactly
//! like `merge3`'s cloud-wins rule. Concurrent delete loses to a
//! concurrent modify, also mirroring `merge3`.
//!
//! The quorum lock survives only for **compaction**: when the folded
//! log outgrows λ, the compactor folds everything into a new
//! [`OplogBase`] whose watermark records, per device, the highest seq
//! already folded — ops at or below the watermark are skipped forever
//! after and devices trim them from their files.

use std::collections::{BTreeMap, BTreeSet};

use unidrive_util::bytes::Bytes;
use unidrive_crypto::{Digest, Sha1};

use crate::codec::{DecodeError, Reader, Writer};
use crate::delta::{apply_record, decode_record, encode_record};
use crate::{DeltaRecord, SyncFolderImage, VersionStamp};

const OP_MAGIC: [u8; 4] = *b"UDOP";
const OP_VERSION: u8 = 1;
const OPLOG_BASE_MAGIC: [u8; 4] = *b"UDOB";
const OPLOG_BASE_VERSION: u8 = 1;

/// One committed metadata operation: a batch of [`DeltaRecord`]s from
/// one device's sync pass, stamped for the total fold order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaOp {
    /// Committing device (also names the op file the op lives in).
    pub device: String,
    /// Per-device commit sequence number, starting at 1; the visible
    /// ops of a device always form a prefix `1..=k` of its log.
    pub seq: u64,
    /// Lamport clock at commit: `max(folded head, own last) + 1`.
    pub lamport: u64,
    /// Highest lamport the device had folded when it built this op;
    /// two ops are concurrent when neither's `base_lamport` covers the
    /// other's `lamport`.
    pub base_lamport: u64,
    /// Device-local commit time (informational, carried into the
    /// version stamp).
    pub stamp_ns: u64,
    /// The metadata changes, in commit order.
    pub records: Vec<DeltaRecord>,
}

impl MetaOp {
    /// Deterministic op id: every replica derives the same digest from
    /// `(folder, device, seq)`, so duplicates — replays, retried
    /// uploads, the same op visible on five clouds — dedup exactly.
    pub fn id(&self, folder: &str) -> Digest {
        op_id(folder, &self.device, self.seq)
    }

    /// The version stamp a fold ending at this op reports.
    pub fn stamp(&self) -> VersionStamp {
        VersionStamp {
            device: self.device.clone(),
            counter: self.lamport,
            timestamp_ns: self.stamp_ns,
        }
    }

    /// Serializes the op (magic `UDOP`).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_header(OP_MAGIC, OP_VERSION);
        w.put_str(&self.device);
        w.put_u64(self.seq);
        w.put_u64(self.lamport);
        w.put_u64(self.base_lamport);
        w.put_u64(self.stamp_ns);
        w.put_u32(self.records.len() as u32);
        for r in &self.records {
            encode_record(&mut w, r);
        }
        w.finish()
    }

    /// Deserializes an op.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on corruption or unknown record kinds.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(data, OP_MAGIC, OP_VERSION)?;
        let device = r.get_str("op device")?;
        let seq = r.get_u64("op seq")?;
        let lamport = r.get_u64("op lamport")?;
        let base_lamport = r.get_u64("op base lamport")?;
        let stamp_ns = r.get_u64("op stamp")?;
        let count = r.get_u32("op record count")?;
        let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            records.push(decode_record(&mut r)?);
        }
        Ok(MetaOp {
            device,
            seq,
            lamport,
            base_lamport,
            stamp_ns,
            records,
        })
    }
}

/// Deterministic op id from `(folder, device, seq)`.
pub fn op_id(folder: &str, device: &str, seq: u64) -> Digest {
    let mut buf = Vec::with_capacity(folder.len() + device.len() + 10);
    buf.extend_from_slice(folder.as_bytes());
    buf.push(0);
    buf.extend_from_slice(device.as_bytes());
    buf.push(0);
    buf.extend_from_slice(&seq.to_le_bytes());
    Sha1::digest(&buf)
}

/// The oplog plane's compacted state: the folded image plus the fold
/// frontier (watermark and per-path writer info), written under the
/// quorum lock. A fresh multi-cloud starts from [`OplogBase::new`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OplogBase {
    /// The folded image as of the watermark.
    pub image: SyncFolderImage,
    /// Per device, the highest seq folded into `image`; ops at or
    /// below it are skipped by every subsequent fold.
    pub watermark: BTreeMap<String, u64>,
    /// Per live path, the `(lamport, device)` of the op that last wrote
    /// it — carried so concurrency detection survives compaction and
    /// `fold(compact(log)) == fold(log)` holds exactly.
    pub writers: BTreeMap<String, (u64, String)>,
}

impl OplogBase {
    /// An empty base: nothing folded yet.
    pub fn new() -> Self {
        OplogBase::default()
    }

    /// Serializes the base (magic `UDOB`).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_header(OPLOG_BASE_MAGIC, OPLOG_BASE_VERSION);
        w.put_u32(self.watermark.len() as u32);
        for (device, seq) in &self.watermark {
            w.put_str(device);
            w.put_u64(*seq);
        }
        w.put_u32(self.writers.len() as u32);
        for (path, (lamport, device)) in &self.writers {
            w.put_str(path);
            w.put_u64(*lamport);
            w.put_str(device);
        }
        w.put_bytes(&self.image.encode());
        w.finish()
    }

    /// Deserializes a base.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on corruption.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(data, OPLOG_BASE_MAGIC, OPLOG_BASE_VERSION)?;
        let n = r.get_u32("watermark count")?;
        let mut watermark = BTreeMap::new();
        for _ in 0..n {
            let device = r.get_str("watermark device")?;
            let seq = r.get_u64("watermark seq")?;
            watermark.insert(device, seq);
        }
        let n = r.get_u32("writer count")?;
        let mut writers = BTreeMap::new();
        for _ in 0..n {
            let path = r.get_str("writer path")?;
            let lamport = r.get_u64("writer lamport")?;
            let device = r.get_str("writer device")?;
            writers.insert(path, (lamport, device));
        }
        let image = SyncFolderImage::decode(r.get_bytes("base image")?)?;
        Ok(OplogBase {
            image,
            watermark,
            writers,
        })
    }
}

/// What one fold computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldOutcome {
    /// The advanced base: folded image, watermark, writer info. Its
    /// `image.version` is the stamp of the last op in fold order (or
    /// the input base's version when no op applied).
    pub base: OplogBase,
    /// Ops applied.
    pub applied: usize,
    /// Ops dropped as duplicates of an op already in the batch.
    pub duplicates: usize,
    /// Ops skipped because the watermark already covered them.
    pub filtered: usize,
    /// Rename-on-conflict resolutions performed.
    pub conflicts: usize,
}

/// Folds `ops` over `base` in total `(lamport, device, seq)` order,
/// dedup'd by op id. Pure and deterministic: any permutation or
/// duplication of `ops` yields the same outcome, which is what makes
/// every reader of the same op set converge byte-identically.
pub fn fold(base: &OplogBase, ops: &[MetaOp], folder: &str) -> FoldOutcome {
    let mut seen: BTreeSet<Digest> = BTreeSet::new();
    let mut batch: Vec<&MetaOp> = Vec::with_capacity(ops.len());
    let mut duplicates = 0usize;
    let mut filtered = 0usize;
    for op in ops {
        if !seen.insert(op.id(folder)) {
            duplicates += 1;
            continue;
        }
        if base.watermark.get(&op.device).copied().unwrap_or(0) >= op.seq {
            filtered += 1;
            continue;
        }
        batch.push(op);
    }
    batch.sort_by(|a, b| {
        (a.lamport, &a.device, a.seq).cmp(&(b.lamport, &b.device, b.seq))
    });

    let mut out = base.clone();
    let mut conflicts = 0usize;
    let applied = batch.len();
    for op in &batch {
        for record in &op.records {
            match record {
                DeltaRecord::UpsertFile { path, snapshot } => {
                    // An op is concurrent with the slot's current
                    // writer when it had not folded that writer's op.
                    let contested = out.writers.get(path).is_some_and(|(lamport, device)| {
                        device != &op.device && op.base_lamport < *lamport
                    });
                    let loser = if contested {
                        out.image
                            .file(path)
                            .filter(|e| e.snapshot != *snapshot)
                            .map(|e| {
                                let (_, device) = &out.writers[path];
                                (device.clone(), e.snapshot.clone())
                            })
                    } else {
                        None
                    };
                    apply_record(&mut out.image, record);
                    if let Some((device, snapshot)) = loser {
                        // Rename-on-conflict: the earlier write is
                        // retained as a conflict copy on the winner,
                        // exactly like merge3's cloud-wins rule.
                        for id in &snapshot.segments {
                            out.image.ensure_segment_if_absent(*id);
                        }
                        out.image.attach_conflict(path, &device, snapshot);
                        conflicts += 1;
                    }
                    out.writers
                        .insert(path.clone(), (op.lamport, op.device.clone()));
                }
                DeltaRecord::DeleteFile { path } => {
                    let modified_since = out.writers.get(path).is_some_and(|(lamport, device)| {
                        device != &op.device && op.base_lamport < *lamport
                    });
                    if modified_since {
                        // Modify beats delete, as in merge3.
                        continue;
                    }
                    apply_record(&mut out.image, record);
                    out.writers.remove(path);
                }
                _ => apply_record(&mut out.image, record),
            }
        }
        out.watermark.insert(op.device.clone(), op.seq);
    }
    if let Some(last) = batch.last() {
        out.image.version = last.stamp();
    }
    // Ops the watermark already covered still advance it (a compaction
    // may have folded them from another cloud's copy of the same file).
    for op in ops {
        let w = out.watermark.entry(op.device.clone()).or_insert(0);
        *w = (*w).max(op.seq);
    }
    FoldOutcome {
        base: out,
        applied,
        duplicates,
        filtered,
        conflicts,
    }
}

/// Compacts `ops` into a new base: exactly [`fold`], serialized under
/// the quorum lock by the compactor. Folding any suffix of the log
/// over the result equals folding the whole log over the old base.
pub fn compact(base: &OplogBase, ops: &[MetaOp], folder: &str) -> OplogBase {
    fold(base, ops, folder).base
}

/// Frames opaque chunks (encrypted op records) into one op-file body:
/// `[u32 le length][chunk]…`. Appending a new op appends one frame, so
/// an op file only ever grows by whole frames.
pub fn frame_chunks(chunks: &[Bytes]) -> Bytes {
    let total: usize = chunks.iter().map(|c| 4 + c.len()).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    Bytes::from(out)
}

/// Splits an op-file body back into chunks, salvaging the longest
/// decodable prefix: a torn upload persists a prefix of the file, so
/// the final frame may be truncated — it (and anything after it) is
/// dropped rather than failing the whole file.
pub fn unframe_chunks(data: &[u8]) -> Vec<Bytes> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at + 4 <= data.len() {
        let len = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]) as usize;
        let Some(end) = at.checked_add(4 + len) else {
            break;
        };
        if end > data.len() {
            break;
        }
        out.push(Bytes::from(data[at + 4..end].to_vec()));
        at = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRef, SegmentId, Snapshot};

    fn seg(tag: &str) -> SegmentId {
        SegmentId(Sha1::digest(tag.as_bytes()))
    }

    fn snap(tag: &str) -> Snapshot {
        Snapshot {
            mtime_ns: 7,
            size: 10,
            segments: vec![seg(tag)],
        }
    }

    fn upsert(path: &str, tag: &str) -> Vec<DeltaRecord> {
        vec![
            DeltaRecord::EnsureSegment {
                id: seg(tag),
                len: 10,
            },
            DeltaRecord::AddBlock {
                id: seg(tag),
                block: BlockRef { index: 0, cloud: 1 },
            },
            DeltaRecord::UpsertFile {
                path: path.into(),
                snapshot: snap(tag),
            },
        ]
    }

    fn op(device: &str, seq: u64, lamport: u64, base_lamport: u64, records: Vec<DeltaRecord>) -> MetaOp {
        MetaOp {
            device: device.into(),
            seq,
            lamport,
            base_lamport,
            stamp_ns: lamport * 100,
            records,
        }
    }

    #[test]
    fn op_encode_decode_round_trip() {
        let o = op("laptop", 3, 9, 7, upsert("a.txt", "s1"));
        assert_eq!(MetaOp::decode(&o.encode()).unwrap(), o);
    }

    #[test]
    fn op_ids_are_distinct_per_folder_device_seq() {
        let o = op("d", 1, 1, 0, Vec::new());
        assert_ne!(o.id("root"), o.id("other"));
        assert_ne!(op_id("f", "d", 1), op_id("f", "d", 2));
        assert_ne!(op_id("f", "d1", 1), op_id("f", "d", 11));
    }

    #[test]
    fn base_encode_decode_round_trip() {
        let folded = fold(
            &OplogBase::new(),
            &[op("a", 1, 1, 0, upsert("x", "s"))],
            "root",
        );
        let base = folded.base;
        assert_eq!(OplogBase::decode(&base.encode()).unwrap(), base);
    }

    #[test]
    fn fold_applies_in_lamport_device_seq_order() {
        // b's op sorts after a's at the same lamport; both after the
        // lamport-1 op regardless of arrival order.
        let ops = vec![
            op("b", 1, 2, 0, upsert("f", "from-b")),
            op("a", 2, 2, 1, upsert("f", "from-a2")),
            op("a", 1, 1, 0, upsert("f", "from-a1")),
        ];
        let out = fold(&OplogBase::new(), &ops, "root");
        assert_eq!(out.applied, 3);
        // Total order: a@1, a2@2, b@2 — b wins the slot.
        assert_eq!(
            out.base.image.file("f").unwrap().snapshot,
            snap("from-b")
        );
        assert_eq!(out.base.image.version, ops[0].stamp());
        assert_eq!(out.base.watermark["a"], 2);
        assert_eq!(out.base.watermark["b"], 1);
    }

    #[test]
    fn duplicate_ops_fold_once() {
        let o = op("a", 1, 1, 0, upsert("f", "s"));
        let out = fold(&OplogBase::new(), &[o.clone(), o.clone(), o], "root");
        assert_eq!(out.applied, 1);
        assert_eq!(out.duplicates, 2);
    }

    #[test]
    fn watermarked_ops_are_filtered() {
        let first = fold(&OplogBase::new(), &[op("a", 1, 1, 0, upsert("f", "s"))], "root");
        let again = fold(
            &first.base,
            &[
                op("a", 1, 1, 0, upsert("f", "s")),
                op("a", 2, 2, 1, upsert("g", "t")),
            ],
            "root",
        );
        assert_eq!(again.filtered, 1);
        assert_eq!(again.applied, 1);
        assert!(again.base.image.file("g").is_some());
    }

    #[test]
    fn concurrent_upserts_retain_loser_as_conflict_copy() {
        // Neither device folded the other's op (base_lamport 0): the
        // later op in total order wins, the earlier survives as a
        // conflict copy — rename-on-conflict, like merge3.
        let ops = vec![
            op("a", 1, 1, 0, upsert("f", "from-a")),
            op("b", 1, 1, 0, upsert("f", "from-b")),
        ];
        let out = fold(&OplogBase::new(), &ops, "root");
        assert_eq!(out.conflicts, 1);
        let entry = out.base.image.file("f").unwrap();
        assert_eq!(entry.snapshot, snap("from-b"));
        let (device, retained) = entry.conflict.as_ref().unwrap();
        assert_eq!(device, "a");
        assert_eq!(retained, &snap("from-a"));
    }

    #[test]
    fn sequential_overwrite_is_not_a_conflict() {
        // b folded a's op (base_lamport 1 >= a's lamport): plain
        // overwrite, no conflict copy.
        let ops = vec![
            op("a", 1, 1, 0, upsert("f", "from-a")),
            op("b", 1, 2, 1, upsert("f", "from-b")),
        ];
        let out = fold(&OplogBase::new(), &ops, "root");
        assert_eq!(out.conflicts, 0);
        assert!(out.base.image.file("f").unwrap().conflict.is_none());
    }

    #[test]
    fn concurrent_delete_loses_to_modify() {
        let ops = vec![
            op("a", 1, 1, 0, upsert("f", "from-a")),
            op(
                "b",
                1,
                1,
                0,
                vec![DeltaRecord::DeleteFile { path: "f".into() }],
            ),
        ];
        let out = fold(&OplogBase::new(), &ops, "root");
        assert!(out.base.image.file("f").is_some(), "modify beats delete");
        // A causal delete (b saw a's op) goes through.
        let ops = vec![
            op("a", 1, 1, 0, upsert("f", "from-a")),
            op(
                "b",
                1,
                2,
                1,
                vec![DeltaRecord::DeleteFile { path: "f".into() }],
            ),
        ];
        let out = fold(&OplogBase::new(), &ops, "root");
        assert!(out.base.image.file("f").is_none());
    }

    #[test]
    fn compact_then_fold_suffix_equals_full_fold() {
        let prefix = vec![
            op("a", 1, 1, 0, upsert("f", "from-a")),
            op("b", 1, 1, 0, upsert("f", "from-b")),
        ];
        let suffix = vec![
            // Concurrent with a's prefix op — the conflict must still
            // be detected after compaction ate the prefix.
            op("c", 1, 1, 0, upsert("f", "from-c")),
            op("a", 2, 3, 2, upsert("g", "g1")),
        ];
        let all: Vec<MetaOp> = prefix.iter().chain(&suffix).cloned().collect();
        let direct = fold(&OplogBase::new(), &all, "root");
        let compacted = compact(&OplogBase::new(), &prefix, "root");
        let resumed = fold(&compacted, &suffix, "root");
        assert_eq!(resumed.base, direct.base);
    }

    #[test]
    fn frame_round_trip_and_torn_tail_salvage() {
        let chunks = vec![
            Bytes::from(b"alpha".to_vec()),
            Bytes::from(b"b".to_vec()),
            Bytes::from(b"gamma-gamma".to_vec()),
        ];
        let framed = frame_chunks(&chunks);
        assert_eq!(unframe_chunks(&framed), chunks);
        // A torn upload keeps a prefix: the cut frame is dropped, the
        // complete ones survive.
        let torn = &framed[..framed.len() - 5];
        assert_eq!(unframe_chunks(torn), chunks[..2].to_vec());
        assert!(unframe_chunks(&framed[..3]).is_empty());
        assert!(unframe_chunks(&[]).is_empty());
    }
}
