//! Content-based file segmentation (paper §6.1).
//!
//! A file is divided at positions where the rolling fingerprint of the
//! trailing window matches a magic value — so boundaries depend only on
//! *content*, not offsets, and a local edit disturbs at most the
//! segments it touches. The paper constrains final segment sizes to
//! `(0.5 θ, 1.5 θ)`; we realize exactly that constraint by suppressing
//! cut points before `0.5 θ` and forcing one at `1.5 θ` (equivalent to
//! the paper's merge-small/split-large post-pass, but single-scan).
//!
//! Two rolling hashes implement the same contract, selected by
//! [`ChunkerKind`]: the paper-faithful LBFS [`RabinHash`] and the
//! FastCDC-style [gear hash](crate::GearHash), whose shift+add update
//! and skip-ahead over the minimum-size region make it several times
//! faster on the same core. Both have an exact fixed-width window
//! (48 bytes for Rabin, 64 for gear), which is what makes cut
//! decisions position-independent and therefore parallelizable — see
//! [`cut_points_parallel`](crate::cut_points_parallel).
//!
//! Each segment is identified by the SHA-1 of its content, giving
//! cross-file deduplication for free.

use unidrive_crypto::{Digest, Sha1};

use crate::gear::{scan_first_match, warm_at, GEAR_WINDOW};
use crate::rabin::RabinHash;

/// Which rolling hash finds the cut points. Both honour the same
/// `(0.5 θ, 1.5 θ)` size contract; they cut at different (but equally
/// content-defined) positions, so a store must pick one and stay with
/// it — mixing kinds re-chunks everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChunkerKind {
    /// LBFS-style Rabin fingerprint over a 48-byte window: the paper's
    /// algorithm, kept as the `--paper-fidelity` mode.
    #[default]
    Rabin,
    /// Gear hash (FastCDC-style): one shift+add+table-lookup per byte,
    /// wide unrolled scan, skip-ahead over the minimum-size region.
    Gear,
}

impl ChunkerKind {
    /// Short lowercase label, used as a metrics dimension.
    pub fn label(&self) -> &'static str {
        match self {
            ChunkerKind::Rabin => "rabin",
            ChunkerKind::Gear => "gear",
        }
    }
}

/// Parameters of the content-defined chunker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Target (average) segment size θ in bytes.
    pub theta: usize,
    /// Rolling-hash window in bytes (Rabin only; the gear hash has an
    /// intrinsic 64-byte window).
    pub window: usize,
    /// Which rolling hash finds the cut points.
    pub kind: ChunkerKind,
}

impl ChunkerConfig {
    /// Creates a Rabin config with the given θ and the LBFS-style
    /// 48-byte window.
    ///
    /// # Panics
    ///
    /// Panics if `theta < 64`.
    pub fn new(theta: usize) -> Self {
        assert!(theta >= 64, "theta too small to chunk meaningfully");
        ChunkerConfig {
            theta,
            window: 48,
            kind: ChunkerKind::Rabin,
        }
    }

    /// Creates a gear-hash config with the given θ.
    ///
    /// # Panics
    ///
    /// Panics if `theta < 64`.
    pub fn gear(theta: usize) -> Self {
        ChunkerConfig::new(theta).with_kind(ChunkerKind::Gear)
    }

    /// Same config with a different [`ChunkerKind`].
    pub fn with_kind(mut self, kind: ChunkerKind) -> Self {
        self.kind = kind;
        self
    }

    /// The paper's default θ = 4 MB (Rabin — paper fidelity).
    pub fn paper_default() -> Self {
        ChunkerConfig::new(4 * 1024 * 1024)
    }

    /// Minimum segment size `0.5 θ`.
    pub fn min_size(&self) -> usize {
        self.theta / 2
    }

    /// Maximum segment size `1.5 θ`.
    pub fn max_size(&self) -> usize {
        self.theta + self.theta / 2
    }

    /// The effective warm-up window of the selected hash, which also
    /// floors the minimum segment size.
    pub(crate) fn effective_window(&self) -> usize {
        match self.kind {
            ChunkerKind::Rabin => self.window,
            ChunkerKind::Gear => GEAR_WINDOW,
        }
    }

    /// Minimum segment size floored by the warm-up window (a cut
    /// cannot be judged before one full window exists).
    pub(crate) fn effective_min(&self) -> usize {
        self.min_size().max(self.effective_window())
    }

    /// Number of mask bits: expected gap between eligible cut points
    /// is `0.5 θ`, so the mean size lands near θ inside
    /// `[0.5 θ, 1.5 θ)`.
    fn mask_bits(&self) -> u32 {
        (self.theta / 2).next_power_of_two().trailing_zeros()
    }

    /// Rabin cut-point mask (low bits; condition `fp & mask == mask`).
    pub(crate) fn mask(&self) -> u64 {
        (1u64 << self.mask_bits()) - 1
    }

    /// Gear cut-point mask: the *top* `mask_bits` bits (condition
    /// `fp & mask == 0`). High bits of the gear fingerprint receive
    /// contributions from every byte of the 64-byte window (a byte of
    /// age `a` lands shifted left by `a`, and carries only propagate
    /// upward), so judging them makes the cut depend on the whole
    /// window rather than the few newest bytes the low bits see.
    pub(crate) fn gear_mask(&self) -> u64 {
        let bits = self.mask_bits();
        if bits == 0 {
            0
        } else {
            ((1u64 << bits) - 1) << (64 - bits)
        }
    }

    /// The mask for this config's kind.
    pub(crate) fn kind_mask(&self) -> u64 {
        match self.kind {
            ChunkerKind::Rabin => self.mask(),
            ChunkerKind::Gear => self.gear_mask(),
        }
    }
}

/// One content-defined segment of a file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Byte offset within the file.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
    /// SHA-1 of the segment content (its identity in the segment pool).
    pub digest: Digest,
}

impl Segment {
    /// The half-open byte range of this segment.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Splits `data` into content-defined segments.
///
/// Every byte belongs to exactly one segment; all segments except
/// possibly the last are within `[0.5 θ, 1.5 θ)`; boundaries are stable
/// under local edits.
///
/// # Examples
///
/// ```
/// use unidrive_chunker::{segment_bytes, ChunkerConfig};
///
/// let data = vec![7u8; 100_000];
/// let segs = segment_bytes(&data, &ChunkerConfig::new(16 * 1024));
/// let total: usize = segs.iter().map(|s| s.len).sum();
/// assert_eq!(total, data.len());
/// ```
pub fn segment_bytes(data: &[u8], config: &ChunkerConfig) -> Vec<Segment> {
    let mut segments = Vec::new();
    for (offset, len) in cut_points(data, config) {
        segments.push(Segment {
            offset,
            len,
            digest: Sha1::digest(&data[offset..offset + len]),
        });
    }
    segments
}

/// Computes `(offset, len)` pairs of the content-defined segmentation
/// without hashing the contents (the cheap half of [`segment_bytes`]).
///
/// Dispatches on [`ChunkerConfig::kind`]: the Rabin path walks the
/// paper's rolling scan; the gear path skips ahead over the
/// minimum-size region and runs the wide unrolled scan. Both produce
/// the *first eligible candidate* in `(start+min, start+max)` or a
/// forced cut at `start+max` — exactly the fold
/// [`cut_points_parallel`](crate::cut_points_parallel) applies to the
/// candidate set, which is what makes serial and parallel output
/// byte-identical.
pub fn cut_points(data: &[u8], config: &ChunkerConfig) -> Vec<(usize, usize)> {
    match config.kind {
        ChunkerKind::Rabin => cut_points_rabin(data, config),
        ChunkerKind::Gear => cut_points_gear(data, config),
    }
}

/// Serial Rabin scan (the paper's algorithm, byte-identical to the
/// pre-[`ChunkerKind`] implementation).
fn cut_points_rabin(data: &[u8], config: &ChunkerConfig) -> Vec<(usize, usize)> {
    if data.is_empty() {
        return Vec::new();
    }
    let mask = config.mask();
    let min = config.min_size().max(config.window);
    let max = config.max_size();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut hash = RabinHash::new(config.window);
    while data.len() - start > max {
        // Find the next cut in (start+min, start+max].
        let mut cut = start + max;
        // Prime the window over the last `window` bytes before the first
        // eligible position.
        hash.reset();
        let prime_from = start + min - config.window;
        for &b in &data[prime_from..start + min] {
            hash.push(b);
        }
        // Walk expiring/arriving bytes as a pair of zipped slices so the
        // inner loop carries no per-byte bounds checks (the loop guard
        // guarantees `start + max < data.len()`).
        let expiring = &data[prime_from..start + max - config.window];
        let arriving = &data[start + min..start + max];
        for (i, (&old, &new)) in expiring.iter().zip(arriving).enumerate() {
            if hash.fingerprint() & mask == mask {
                cut = start + min + i;
                break;
            }
            hash.roll(old, new);
        }
        out.push((start, cut - start));
        start = cut;
    }
    out.push((start, data.len() - start));
    out
}

/// Serial gear scan with skip-ahead: after each cut the scan jumps
/// straight to the first eligible position (`start + min`), re-warms
/// the 64-byte window there, and runs the wide unrolled first-match
/// kernel over `(start+min, start+max)`. Most of the minimum-size
/// region is never touched, which is (with the cheaper per-byte
/// update) where the gear path's speed comes from.
fn cut_points_gear(data: &[u8], config: &ChunkerConfig) -> Vec<(usize, usize)> {
    if data.is_empty() {
        return Vec::new();
    }
    let mask = config.gear_mask();
    let min = config.effective_min();
    let max = config.max_size();
    let mut out = Vec::new();
    let mut start = 0usize;
    while data.len() - start > max {
        // Candidate positions are [start+min, start+max); a position's
        // fingerprint is an exact function of the 64 bytes before it
        // (gear's exact-window lemma), so warming up at start+min gives
        // bit-identical fingerprints to a scan that rolled through from
        // the start of the file.
        let lo = start + min;
        let hi = start + max;
        let cut = match scan_first_match(&data[lo..hi], warm_at(data, lo), mask) {
            Some(off) => lo + off,
            None => hi,
        };
        out.push((start, cut - start));
        start = cut;
    }
    out.push((start, data.len() - start));
    out
}

/// Replays the serial min/max state machine over a pre-computed sorted
/// candidate list: next cut = first candidate in `[start+min,
/// start+max)`, else forced at `start+max`. Returns the segmentation
/// plus the number of candidates skipped because they fell inside a
/// minimum-size region (the "resync" work the parallel driver reports).
///
/// Candidates are position-independent (each is judged on its own
/// trailing window), so this fold over the *complete* candidate set is
/// exactly what the serial scans compute — the serial ≡ parallel
/// contract rests on this function being the single source of truth
/// for the size constraint.
pub(crate) fn fold_candidates(
    len: usize,
    config: &ChunkerConfig,
    candidates: &[usize],
) -> (Vec<(usize, usize)>, usize) {
    if len == 0 {
        return (Vec::new(), 0);
    }
    let min = config.effective_min();
    let max = config.max_size();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut idx = 0usize;
    let mut skipped = 0usize;
    while len - start > max {
        while idx < candidates.len() && candidates[idx] < start + min {
            idx += 1;
            skipped += 1;
        }
        let cut = if idx < candidates.len() && candidates[idx] < start + max {
            let c = candidates[idx];
            idx += 1;
            c
        } else {
            start + max
        };
        out.push((start, cut - start));
        start = cut;
    }
    out.push((start, len - start));
    (out, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::new(8 * 1024)
    }

    #[test]
    fn segments_cover_input_exactly() {
        let data = pseudo_random(200_000, 1);
        let segs = segment_bytes(&data, &cfg());
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.offset, pos);
            pos += s.len;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn sizes_respect_paper_bounds() {
        let config = cfg();
        let data = pseudo_random(500_000, 2);
        let segs = segment_bytes(&data, &config);
        assert!(segs.len() > 10, "expected many segments, got {}", segs.len());
        for (i, s) in segs.iter().enumerate() {
            if i + 1 < segs.len() {
                assert!(
                    s.len >= config.min_size() && s.len < config.max_size() + 1,
                    "segment {i} size {} out of bounds",
                    s.len
                );
            } else {
                assert!(s.len <= config.max_size());
            }
        }
    }

    #[test]
    fn mean_size_is_near_theta() {
        let config = cfg();
        let data = pseudo_random(2_000_000, 3);
        let segs = segment_bytes(&data, &config);
        let mean = data.len() as f64 / segs.len() as f64;
        let theta = config.theta as f64;
        assert!(
            (0.6 * theta..1.4 * theta).contains(&mean),
            "mean {mean} vs theta {theta}"
        );
    }

    #[test]
    fn local_edit_disturbs_few_segments() {
        // The property that minimizes sync traffic: flipping one byte in
        // the middle changes only the digests of segments near the edit.
        let config = cfg();
        let mut data = pseudo_random(400_000, 4);
        let before = segment_bytes(&data, &config);
        data[200_000] ^= 0xFF;
        let after = segment_bytes(&data, &config);
        let before_set: std::collections::HashSet<_> =
            before.iter().map(|s| s.digest).collect();
        let changed = after
            .iter()
            .filter(|s| !before_set.contains(&s.digest))
            .count();
        assert!(
            changed <= 3,
            "a one-byte edit changed {changed} of {} segments",
            after.len()
        );
    }

    #[test]
    fn prepend_shifts_but_preserves_most_segments() {
        // Offset-based (fixed-size) chunking would invalidate everything.
        let config = cfg();
        let data = pseudo_random(400_000, 5);
        let before = segment_bytes(&data, &config);
        let mut shifted = pseudo_random(1000, 6);
        shifted.extend_from_slice(&data);
        let after = segment_bytes(&shifted, &config);
        let before_set: std::collections::HashSet<_> =
            before.iter().map(|s| s.digest).collect();
        let reused = after
            .iter()
            .filter(|s| before_set.contains(&s.digest))
            .count();
        assert!(
            reused * 2 > after.len(),
            "only {reused} of {} segments reused after prepend",
            after.len()
        );
    }

    #[test]
    fn identical_content_same_digests() {
        let data = pseudo_random(100_000, 7);
        let a = segment_bytes(&data, &cfg());
        let b = segment_bytes(&data, &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn small_files_are_one_segment() {
        let config = cfg();
        for len in [1usize, 100, config.min_size(), config.max_size()] {
            let data = pseudo_random(len, 8);
            let segs = segment_bytes(&data, &config);
            assert_eq!(segs.len(), 1, "len {len}");
            assert_eq!(segs[0].len, len);
        }
    }

    #[test]
    fn empty_input_has_no_segments() {
        assert!(segment_bytes(&[], &cfg()).is_empty());
    }

    #[test]
    fn property_every_byte_covered_once_across_seeds_and_thetas() {
        // Coverage invariant: for any input and any θ, segments tile
        // the input exactly — contiguous, non-overlapping, complete.
        for theta in [1024usize, 4 * 1024, 64 * 1024] {
            let config = ChunkerConfig::new(theta);
            for seed in 0..8u64 {
                let len = 10_000 + (seed as usize * 7919) % 90_000;
                let data = pseudo_random(len, seed.wrapping_mul(97) + 5);
                let segs = segment_bytes(&data, &config);
                let mut pos = 0usize;
                for s in &segs {
                    assert_eq!(s.offset, pos, "theta={theta} seed={seed}");
                    assert!(s.len > 0, "theta={theta} seed={seed}: empty segment");
                    pos += s.len;
                }
                assert_eq!(pos, data.len(), "theta={theta} seed={seed}");
            }
        }
    }

    #[test]
    fn property_sizes_within_half_to_three_half_theta() {
        // Size invariant: every non-final segment lands in
        // [0.5 θ, 1.5 θ); the final one only has the upper bound.
        for theta in [1024usize, 8 * 1024, 32 * 1024] {
            let config = ChunkerConfig::new(theta);
            for seed in 20..26u64 {
                let data = pseudo_random(40 * theta, seed);
                let segs = segment_bytes(&data, &config);
                for (i, s) in segs.iter().enumerate() {
                    assert!(s.len <= config.max_size(), "theta={theta} seed={seed} seg {i}");
                    if i + 1 < segs.len() {
                        assert!(
                            s.len >= config.min_size(),
                            "theta={theta} seed={seed} seg {i}: {} < {}",
                            s.len,
                            config.min_size()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn property_boundaries_stable_under_prefix_edit() {
        // Stability invariant: editing bytes inside the first segment
        // leaves every later boundary untouched — the content-defined
        // cuts downstream of the edit depend only on local windows.
        let config = ChunkerConfig::new(8 * 1024);
        for seed in 40..46u64 {
            let data = pseudo_random(300_000, seed);
            let before = segment_bytes(&data, &config);
            assert!(before.len() > 3, "seed={seed}");
            let mut edited = data.clone();
            // Scribble over a run near the start (inside segment 0, past
            // the rolling window so segment 0's own cut can re-settle).
            for b in &mut edited[100..200] {
                *b ^= 0x5A;
            }
            let after = segment_bytes(&edited, &config);
            // All boundaries at or after the end of the edited segment
            // must be byte-identical.
            let stable_from = before[0].offset + before[0].len.max(after[0].len);
            let cuts = |segs: &[Segment]| {
                segs.iter()
                    .map(|s| s.offset + s.len)
                    .filter(|&c| c > stable_from)
                    .collect::<Vec<_>>()
            };
            assert_eq!(cuts(&before), cuts(&after), "seed={seed}");
        }
    }

    fn gear_cfg() -> ChunkerConfig {
        ChunkerConfig::gear(8 * 1024)
    }

    #[test]
    fn gear_segments_cover_input_exactly() {
        let data = pseudo_random(200_000, 1);
        let segs = segment_bytes(&data, &gear_cfg());
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.offset, pos);
            pos += s.len;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn gear_sizes_respect_paper_bounds() {
        let config = gear_cfg();
        let data = pseudo_random(500_000, 2);
        let segs = segment_bytes(&data, &config);
        assert!(segs.len() > 10, "expected many segments, got {}", segs.len());
        for (i, s) in segs.iter().enumerate() {
            assert!(s.len <= config.max_size(), "segment {i}");
            if i + 1 < segs.len() {
                assert!(s.len >= config.min_size(), "segment {i} size {}", s.len);
            }
        }
    }

    #[test]
    fn gear_mean_size_is_near_theta() {
        let config = gear_cfg();
        let data = pseudo_random(2_000_000, 3);
        let segs = segment_bytes(&data, &config);
        let mean = data.len() as f64 / segs.len() as f64;
        let theta = config.theta as f64;
        assert!(
            (0.6 * theta..1.4 * theta).contains(&mean),
            "mean {mean} vs theta {theta}"
        );
    }

    #[test]
    fn gear_local_edit_disturbs_few_segments() {
        let config = gear_cfg();
        let mut data = pseudo_random(400_000, 4);
        let before = segment_bytes(&data, &config);
        data[200_000] ^= 0xFF;
        let after = segment_bytes(&data, &config);
        let before_set: std::collections::HashSet<_> =
            before.iter().map(|s| s.digest).collect();
        let changed = after
            .iter()
            .filter(|s| !before_set.contains(&s.digest))
            .count();
        assert!(
            changed <= 3,
            "a one-byte edit changed {changed} of {} segments",
            after.len()
        );
    }

    #[test]
    fn gear_prepend_shifts_but_preserves_most_segments() {
        let config = gear_cfg();
        let data = pseudo_random(400_000, 5);
        let before = segment_bytes(&data, &config);
        let mut shifted = pseudo_random(1000, 6);
        shifted.extend_from_slice(&data);
        let after = segment_bytes(&shifted, &config);
        let before_set: std::collections::HashSet<_> =
            before.iter().map(|s| s.digest).collect();
        let reused = after
            .iter()
            .filter(|s| before_set.contains(&s.digest))
            .count();
        assert!(
            reused * 2 > after.len(),
            "only {reused} of {} segments reused after prepend",
            after.len()
        );
    }

    #[test]
    fn gear_constant_data_hits_max_size_segments() {
        // A constant window has one fingerprint; with overwhelming
        // probability it misses the mask, forcing max-size cuts — but
        // whichever way it goes, the size contract must hold.
        let config = gear_cfg();
        let data = vec![0u8; 200_000];
        let segs = segment_bytes(&data, &config);
        let mut pos = 0;
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.offset, pos);
            pos += s.len;
            assert!(s.len <= config.max_size());
            if i + 1 < segs.len() {
                assert!(s.len >= config.min_size());
            }
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn gear_kinds_cut_differently_but_both_lawfully() {
        // Sanity: the two kinds are different segmentations of the same
        // content (mixing them would re-chunk a store), yet both honour
        // the same contract.
        let data = pseudo_random(600_000, 21);
        let rabin = segment_bytes(&data, &cfg());
        let gear = segment_bytes(&data, &gear_cfg());
        assert_ne!(
            rabin.iter().map(|s| s.offset).collect::<Vec<_>>(),
            gear.iter().map(|s| s.offset).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gear_boundaries_stable_under_prefix_edit() {
        let config = gear_cfg();
        for seed in 60..66u64 {
            let data = pseudo_random(300_000, seed);
            let before = segment_bytes(&data, &config);
            assert!(before.len() > 3, "seed={seed}");
            let mut edited = data.clone();
            for b in &mut edited[100..200] {
                *b ^= 0x5A;
            }
            let after = segment_bytes(&edited, &config);
            let stable_from = before[0].offset + before[0].len.max(after[0].len);
            let cuts = |segs: &[Segment]| {
                segs.iter()
                    .map(|s| s.offset + s.len)
                    .filter(|&c| c > stable_from)
                    .collect::<Vec<_>>()
            };
            assert_eq!(cuts(&before), cuts(&after), "seed={seed}");
        }
    }

    #[test]
    fn fold_matches_serial_scan_for_both_kinds() {
        // fold_candidates over the full candidate set must reproduce
        // the serial skip-ahead scans exactly (the serial ≡ parallel
        // contract in miniature, without threads).
        for config in [cfg(), gear_cfg()] {
            let data = pseudo_random(400_000, 77);
            let min = config.effective_min();
            let mut candidates = Vec::new();
            match config.kind {
                ChunkerKind::Gear => {
                    let mask = config.gear_mask();
                    let mut h = warm_at(&data, min);
                    for c in min..data.len() {
                        if h & mask == 0 {
                            candidates.push(c);
                        }
                        h = (h << 1).wrapping_add(crate::gear::GEAR_TABLE[data[c] as usize]);
                    }
                }
                ChunkerKind::Rabin => {
                    let mask = config.mask();
                    let mut hash = RabinHash::new(config.window);
                    for &b in &data[min - config.window..min] {
                        hash.push(b);
                    }
                    for c in min..data.len() {
                        if hash.fingerprint() & mask == mask {
                            candidates.push(c);
                        }
                        hash.roll(data[c - config.window], data[c]);
                    }
                }
            }
            let (folded, _) = fold_candidates(data.len(), &config, &candidates);
            assert_eq!(
                folded,
                cut_points(&data, &config),
                "kind={}",
                config.kind.label()
            );
        }
    }

    #[test]
    fn constant_data_hits_max_size_segments() {
        // All-zero data never matches the magic mask, so cuts are forced
        // at max_size: the degenerate-content worst case terminates.
        let config = cfg();
        let data = vec![0u8; 100_000];
        let segs = segment_bytes(&data, &config);
        for (i, s) in segs.iter().enumerate() {
            if i + 1 < segs.len() {
                assert_eq!(s.len, config.max_size());
            }
        }
        // And all full-size segments dedup to one digest.
        let distinct: std::collections::HashSet<_> =
            segs[..segs.len() - 1].iter().map(|s| s.digest).collect();
        assert_eq!(distinct.len(), 1);
    }
}
