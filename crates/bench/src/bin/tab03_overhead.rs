//! **Table 3** — overall sync overhead (§7.2): additional network
//! traffic relative to the content a system had to move. The paper
//! measures ~1 % for UniDrive (Delta-sync + tiny version files keep the
//! control traffic small), ~1-7 % for native apps, and ~15 % for the
//! intuitive solution (every sync involves all five CCSs' protocols).
//!
//! Accounting follows the paper: the overhead is "the ratio of
//! additional network traffic to the actual sync'd data size", where
//! the sync'd data is every content block/chunk/part payload a system
//! moved (erasure parity and over-provisioned blocks are sync'd data —
//! they are how these systems store files), and the *additional*
//! traffic is HTTP request overhead, listings, metadata, version and
//! lock files.

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::{IntuitiveMultiCloud, MultiCloudBenchmark, SingleCloudClient};
use unidrive_bench::{metrics_out, ExperimentScale};
use unidrive_cloud::CloudId;
use unidrive_core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive_erasure::RedundancyConfig;
use unidrive_sim::{Runtime, SimRng, SimRuntime};
use unidrive_workload::{batch, build_multicloud_shared, site_by_name, Provider, TextTable};

/// Counts the payload bytes of *content* objects (erasure blocks and
/// native chunks), pass-through for everything else.
struct ContentCounter {
    inner: std::sync::Arc<dyn unidrive_cloud::CloudStore>,
    bytes: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ContentCounter {
    fn is_content(path: &str) -> bool {
        path.starts_with("unidrive/blocks/") || path.starts_with("native/")
    }
}

impl unidrive_cloud::CloudStore for ContentCounter {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn upload(&self, path: &str, data: unidrive_util::bytes::Bytes) -> Result<(), unidrive_cloud::CloudError> {
        let len = data.len() as u64;
        let r = self.inner.upload(path, data);
        if r.is_ok() && Self::is_content(path) {
            self.bytes.fetch_add(len, std::sync::atomic::Ordering::Relaxed);
        }
        r
    }
    fn download(&self, path: &str) -> Result<unidrive_util::bytes::Bytes, unidrive_cloud::CloudError> {
        let r = self.inner.download(path);
        if let Ok(data) = &r {
            if Self::is_content(path) {
                self.bytes
                    .fetch_add(data.len() as u64, std::sync::atomic::Ordering::Relaxed);
            }
        }
        r
    }
    fn create_dir(&self, path: &str) -> Result<(), unidrive_cloud::CloudError> {
        self.inner.create_dir(path)
    }
    fn list(&self, path: &str) -> Result<Vec<unidrive_cloud::ObjectInfo>, unidrive_cloud::CloudError> {
        self.inner.list(path)
    }
    fn delete(&self, path: &str) -> Result<(), unidrive_cloud::CloudError> {
        self.inner.delete(path)
    }
}

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = metrics_out::from_args();
    let (count, size) = scale.batch;
    let oregon = site_by_name("Oregon").expect("site");
    let virginia = site_by_name("Virginia").expect("site");
    let redundancy = RedundancyConfig::new(5, 3, 3, 2).expect("valid");

    println!(
        "Table 3: sync overhead (%) for {count} x {} KB batch, Oregon -> Virginia\n",
        size / 1024
    );
    let mut table = TextTable::new(&["system", "traffic MB", "content MB", "overhead %"]);

    let run = |label: &str, sys_idx: usize| -> (String, f64, f64) {
        let sim = SimRuntime::new(1303);
        let (raw_sets, handles) = build_multicloud_shared(&sim, &[oregon, virginia]);
        let rt = sim.clone().as_runtime();
        let files = batch(count, size, 1303);
        let content_bytes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sets: Vec<unidrive_cloud::CloudSet> = raw_sets
            .iter()
            .map(|set| {
                unidrive_cloud::CloudSet::new(
                    set.iter()
                        .map(|(_, cloud)| {
                            std::sync::Arc::new(ContentCounter {
                                inner: std::sync::Arc::clone(cloud),
                                bytes: std::sync::Arc::clone(&content_bytes),
                            }) as std::sync::Arc<dyn unidrive_cloud::CloudStore>
                        })
                        .collect(),
                )
            })
            .collect();
        match sys_idx {
            0 => {
                for handle in handles.iter().flatten() {
                    handle.install_obs(metrics.obs.clone());
                }
                let config = |device: &str| {
                    let mut c = ClientConfig::paper_default(device);
                    c.data = DataPlaneConfig {
                        connections_per_cloud: 5,
                        obs: metrics.obs.clone(),
                        ..DataPlaneConfig::with_params(redundancy, scale.theta)
                    };
                    c
                };
                let folder = MemFolder::new();
                let mut up = UniDriveClient::new(
                    rt.clone(),
                    sets[0].clone(),
                    Arc::clone(&folder) as Arc<dyn SyncFolder>,
                    config("src"),
                    SimRng::seed_from_u64(1),
                );
                let down_folder = MemFolder::new();
                let mut down = UniDriveClient::new(
                    rt.clone(),
                    sets[1].clone(),
                    down_folder as Arc<dyn SyncFolder>,
                    config("dst"),
                    SimRng::seed_from_u64(2),
                );
                for group in files.chunks(10) {
                    for (path, data) in group {
                        folder.write(path, data, 1).expect("write");
                    }
                    let _ = up.sync_once();
                    let _ = down.sync_once();
                }
                // Let background reliability finish, then settle both.
                sim.sleep(Duration::from_secs(600));
                for _ in 0..5 {
                    let _ = up.sync_once();
                    let _ = down.sync_once();
                }
            }
            1 => {
                let src = MultiCloudBenchmark::new(rt.clone(), sets[0].clone(), redundancy, 5)
                    .with_chunk_size(scale.theta);
                let dst = MultiCloudBenchmark::new(rt.clone(), sets[1].clone(), redundancy, 5)
                    .with_chunk_size(scale.theta);
                for (path, data) in &files {
                    if src.upload(path, data.clone()).is_ok() {
                        if let Some(m) = src.manifest_of(path) {
                            dst.adopt_manifest(path, m);
                            let _ = dst.download(path);
                        }
                    }
                }
            }
            2 => {
                let src = IntuitiveMultiCloud::new(rt.clone(), &sets[0], 5);
                let dst = IntuitiveMultiCloud::new(rt.clone(), &sets[1], 5);
                for (path, data) in &files {
                    if src.upload(path, data.clone()).is_ok() {
                        dst.assume_uploaded(path, data.len() as u64);
                        let _ = dst.download(path);
                    }
                }
            }
            n => {
                let provider = CloudId(n - 3);
                let src =
                    SingleCloudClient::new(rt.clone(), Arc::clone(sets[0].get(provider)), 5);
                let dst =
                    SingleCloudClient::new(rt.clone(), Arc::clone(sets[1].get(provider)), 5);
                for (path, data) in &files {
                    if src.upload(path, data.clone()).is_ok() {
                        dst.assume_uploaded(path, data.len() as u64);
                        let _ = dst.download(path);
                    }
                }
            }
        }
        let traffic: u64 = handles
            .iter()
            .flatten()
            .map(|h| h.traffic().total_bytes())
            .sum();
        let content = content_bytes.load(std::sync::atomic::Ordering::Relaxed) as f64;
        (label.to_owned(), traffic as f64, content)
    };

    let systems = [
        ("UniDrive", 0usize),
        ("Benchmark", 1),
        ("Intuitive", 2),
        ("Dropbox", 3),
        ("OneDrive", 4),
        ("GoogleDrive", 5),
        ("BaiduPCS", 6),
        ("DBank", 7),
    ];
    for (label, idx) in systems {
        let (label, traffic, content) = run(label, idx);
        let overhead = 100.0 * (traffic - content) / content;
        table.row(vec![
            label,
            format!("{:.1}", traffic / 1e6),
            format!("{:.1}", content / 1e6),
            format!("{overhead:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(paper: UniDrive 1.04%, benchmark 1.01%, intuitive 14.93%, natives 0.70-7.07%)"
    );
    if let Some(path) = metrics.write() {
        println!("metrics snapshot written to {path}");
    }
    let _ = Provider::ALL;
}
