//! Error taxonomy for cloud storage operations.

use std::fmt;

/// Error returned by [`CloudStore`](crate::CloudStore) operations.
///
/// The variants mirror the failure classes the UniDrive measurement study
/// observed for real CCS Web APIs (paper §3.2): transient request
/// failures (by far the most common), admission-level unavailability
/// (regional blocks, outages), quota exhaustion, and plain not-found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The object or directory does not exist.
    NotFound {
        /// Path that was requested.
        path: String,
    },
    /// The request failed transiently (network or server hiccup); the
    /// operation may succeed if retried.
    Transient {
        /// Human-readable cause.
        reason: String,
    },
    /// The cloud is administratively unavailable (outage or regional
    /// block); retrying soon is unlikely to help.
    Unavailable {
        /// Cloud that is unavailable.
        cloud: String,
    },
    /// The account's storage quota would be exceeded.
    QuotaExceeded {
        /// Bytes the upload needed.
        needed: u64,
        /// Bytes still free under the quota.
        available: u64,
    },
    /// The path is syntactically invalid for this store.
    InvalidPath {
        /// Offending path.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An underlying I/O error (filesystem-backed stores).
    Io {
        /// Stringified `std::io::Error`.
        message: String,
    },
}

impl CloudError {
    /// Whether retrying the same operation may succeed.
    ///
    /// Transient failures are retryable; everything else is not (an
    /// unavailable cloud needs failover, not retry — UniDrive routes the
    /// block to another cloud instead).
    pub fn is_retryable(&self) -> bool {
        matches!(self, CloudError::Transient { .. })
    }

    /// Shorthand constructor for transient failures.
    pub fn transient(reason: impl Into<String>) -> Self {
        CloudError::Transient {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for not-found.
    pub fn not_found(path: impl Into<String>) -> Self {
        CloudError::NotFound { path: path.into() }
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::NotFound { path } => write!(f, "object not found: {path}"),
            CloudError::Transient { reason } => write!(f, "transient failure: {reason}"),
            CloudError::Unavailable { cloud } => write!(f, "cloud unavailable: {cloud}"),
            CloudError::QuotaExceeded { needed, available } => write!(
                f,
                "quota exceeded: needed {needed} bytes, {available} available"
            ),
            CloudError::InvalidPath { path, reason } => {
                write!(f, "invalid path {path:?}: {reason}")
            }
            CloudError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<std::io::Error> for CloudError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            CloudError::NotFound {
                path: String::new(),
            }
        } else {
            CloudError::Io {
                message: e.to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_transient_is_retryable() {
        assert!(CloudError::transient("x").is_retryable());
        assert!(!CloudError::not_found("p").is_retryable());
        assert!(!CloudError::Unavailable {
            cloud: "c".into()
        }
        .is_retryable());
        assert!(!CloudError::QuotaExceeded {
            needed: 1,
            available: 0
        }
        .is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = CloudError::QuotaExceeded {
            needed: 10,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('3'));
    }

    #[test]
    fn io_not_found_maps_to_not_found() {
        let io = std::io::Error::from(std::io::ErrorKind::NotFound);
        assert!(matches!(CloudError::from(io), CloudError::NotFound { .. }));
    }
}
