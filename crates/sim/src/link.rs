//! Network link modeling.
//!
//! A [`LinkProfile`] describes one *directed* path between a client
//! location and one cloud service (so a location/cloud pair normally owns
//! two links: upstream and downstream). The model captures the three
//! properties the UniDrive measurement study (paper §3.2) found to matter:
//!
//! 1. **Spatial disparity** — the base per-connection and aggregate rates
//!    differ per (location, cloud) pair; profiles are supplied by
//!    `unidrive-workload`.
//! 2. **Temporal fluctuation** — every `epoch` the link re-samples a
//!    lognormal multiplier, with an occasional deep "fade" mimicking the
//!    17× max/min daily swings of Fig. 3.
//! 3. **Connection behaviour** — concurrent transfers share the aggregate
//!    capacity processor-sharing style, each additionally capped by the
//!    per-connection rate, reproducing the throughput-vs-parallelism
//!    behaviour that motivates multi-connection transfer.

use std::time::Duration;

use crate::rng::SimRng;
use crate::Time;

/// Identifier of a directed link registered with a
/// [`SimRuntime`](crate::SimRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

/// Static description of a directed network path.
///
/// Rates are in **bytes per second**. A multiplier sampled every `epoch`
/// scales both rates; `sigma` controls its lognormal spread and
/// `fade_prob`/`fade_range` inject occasional deep fades.
///
/// # Examples
///
/// ```
/// use unidrive_sim::LinkProfile;
///
/// // A fairly fast, fairly stable path: ~2 MB/s per connection,
/// // 6 MB/s aggregate.
/// let p = LinkProfile::new(2e6, 6e6);
/// assert!(p.per_conn_bytes_per_sec > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Rate ceiling of a single connection, bytes/second.
    pub per_conn_bytes_per_sec: f64,
    /// Aggregate ceiling across all concurrent connections, bytes/second.
    pub agg_bytes_per_sec: f64,
    /// Lognormal sigma of the epoch multiplier (0 disables fluctuation).
    pub sigma: f64,
    /// Probability that an epoch is a deep fade.
    pub fade_prob: f64,
    /// Multiplier range applied during a fade.
    pub fade_range: (f64, f64),
    /// How often the multiplier is re-sampled.
    pub epoch: Duration,
    /// Fixed per-request setup latency.
    pub latency: Duration,
    /// Uniform jitter added to `latency`.
    pub latency_jitter: Duration,
}

impl LinkProfile {
    /// Creates a profile with the given rates and mild default dynamics:
    /// sigma 0.35, 3 % fade probability, 60 s epochs, 80 ms ± 40 ms
    /// request latency.
    ///
    /// # Panics
    ///
    /// Panics if either rate is not strictly positive and finite.
    pub fn new(per_conn_bytes_per_sec: f64, agg_bytes_per_sec: f64) -> Self {
        assert!(
            per_conn_bytes_per_sec > 0.0 && per_conn_bytes_per_sec.is_finite(),
            "per-connection rate must be positive"
        );
        assert!(
            agg_bytes_per_sec > 0.0 && agg_bytes_per_sec.is_finite(),
            "aggregate rate must be positive"
        );
        LinkProfile {
            per_conn_bytes_per_sec,
            agg_bytes_per_sec,
            sigma: 0.35,
            fade_prob: 0.03,
            fade_range: (0.05, 0.4),
            epoch: Duration::from_secs(60),
            latency: Duration::from_millis(80),
            latency_jitter: Duration::from_millis(40),
        }
    }

    /// A perfectly stable link (no fluctuation, no fades, no latency);
    /// useful in unit tests that assert exact transfer times.
    pub fn steady(per_conn_bytes_per_sec: f64, agg_bytes_per_sec: f64) -> Self {
        LinkProfile {
            sigma: 0.0,
            fade_prob: 0.0,
            latency: Duration::ZERO,
            latency_jitter: Duration::ZERO,
            ..LinkProfile::new(per_conn_bytes_per_sec, agg_bytes_per_sec)
        }
    }

    /// Builder-style: sets the fluctuation parameters.
    pub fn with_fluctuation(mut self, sigma: f64, fade_prob: f64) -> Self {
        self.sigma = sigma;
        self.fade_prob = fade_prob;
        self
    }

    /// Builder-style: sets request latency and jitter.
    pub fn with_latency(mut self, latency: Duration, jitter: Duration) -> Self {
        self.latency = latency;
        self.latency_jitter = jitter;
        self
    }

    /// Builder-style: sets the multiplier re-sampling period.
    pub fn with_epoch(mut self, epoch: Duration) -> Self {
        self.epoch = epoch;
        self
    }
}

/// A transfer in flight on a link.
#[derive(Debug)]
pub(crate) struct Flow {
    pub remaining_bytes: f64,
    pub actor: usize,
}

/// Engine-internal mutable link state.
#[derive(Debug)]
pub(crate) struct LinkState {
    pub profile: LinkProfile,
    pub multiplier: f64,
    pub next_resample_ns: u64,
    pub flows: Vec<Flow>,
    pub enabled: bool,
    rng: SimRng,
}

impl LinkState {
    pub fn new(profile: LinkProfile, rng: SimRng) -> Self {
        LinkState {
            multiplier: 1.0,
            next_resample_ns: profile.epoch.as_nanos() as u64,
            profile,
            flows: Vec::new(),
            enabled: true,
            rng,
        }
    }

    /// Bytes/second currently granted to *each* flow on this link.
    pub fn rate_per_flow(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        let per_conn = self.profile.per_conn_bytes_per_sec * self.multiplier;
        let agg = self.profile.agg_bytes_per_sec * self.multiplier;
        (per_conn.min(agg / self.flows.len() as f64)).max(1.0)
    }

    /// Virtual time at which the earliest current flow would finish, given
    /// rates stay constant.
    pub fn earliest_completion(&self, now: Time) -> Option<Time> {
        let rate = self.rate_per_flow();
        self.flows
            .iter()
            .map(|f| f.remaining_bytes)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.min(r)))
            })
            .map(|min_remaining| {
                let secs = (min_remaining / rate).max(0.0);
                now + Duration::from_nanos((secs * 1e9).ceil() as u64)
            })
    }

    /// Deducts `dt` worth of progress from every flow.
    pub fn integrate(&mut self, dt: Duration) {
        if self.flows.is_empty() {
            return;
        }
        let rate = self.rate_per_flow();
        let progressed = rate * dt.as_secs_f64();
        for f in &mut self.flows {
            f.remaining_bytes -= progressed;
        }
    }

    /// Re-samples the epoch multiplier if `now` passed the boundary;
    /// returns how many epoch boundaries were crossed (for the
    /// engine's resample accounting).
    pub fn maybe_resample(&mut self, now_ns: u64) -> u64 {
        let mut crossed = 0;
        while self.next_resample_ns <= now_ns {
            self.resample();
            self.next_resample_ns += self.profile.epoch.as_nanos() as u64;
            crossed += 1;
        }
        crossed
    }

    fn resample(&mut self) {
        let p = &self.profile;
        if p.sigma == 0.0 && p.fade_prob == 0.0 {
            self.multiplier = 1.0;
            return;
        }
        // mu = -sigma^2/2 keeps the lognormal mean at 1.0.
        let mut m = self.rng.lognormal(-p.sigma * p.sigma / 2.0, p.sigma);
        if self.rng.chance(p.fade_prob) {
            m *= self.rng.uniform(p.fade_range.0, p.fade_range.1);
        }
        self.multiplier = m.clamp(0.02, 5.0);
    }

    /// Samples one request latency.
    pub fn sample_latency(&mut self) -> Duration {
        let jitter_ns = self.profile.latency_jitter.as_nanos() as u64;
        let extra = if jitter_ns == 0 {
            0
        } else {
            self.rng.below(jitter_ns)
        };
        self.profile.latency + Duration::from_nanos(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(profile: LinkProfile) -> LinkState {
        LinkState::new(profile, SimRng::seed_from_u64(1))
    }

    #[test]
    fn single_flow_gets_per_connection_rate() {
        let mut s = state(LinkProfile::steady(1e6, 10e6));
        s.flows.push(Flow {
            remaining_bytes: 1e6,
            actor: 0,
        });
        assert_eq!(s.rate_per_flow(), 1e6);
    }

    #[test]
    fn many_flows_share_aggregate() {
        let mut s = state(LinkProfile::steady(1e6, 2e6));
        for _ in 0..4 {
            s.flows.push(Flow {
                remaining_bytes: 1e6,
                actor: 0,
            });
        }
        // 4 flows share 2 MB/s aggregate: 0.5 MB/s each.
        assert_eq!(s.rate_per_flow(), 0.5e6);
    }

    #[test]
    fn completion_time_is_remaining_over_rate() {
        let mut s = state(LinkProfile::steady(1e6, 1e6));
        s.flows.push(Flow {
            remaining_bytes: 2e6,
            actor: 0,
        });
        let done = s.earliest_completion(Time::ZERO).unwrap();
        assert_eq!(done, Time::from_secs(2));
    }

    #[test]
    fn integrate_reduces_remaining() {
        let mut s = state(LinkProfile::steady(1e6, 1e6));
        s.flows.push(Flow {
            remaining_bytes: 2e6,
            actor: 0,
        });
        s.integrate(Duration::from_secs(1));
        assert!((s.flows[0].remaining_bytes - 1e6).abs() < 1.0);
    }

    #[test]
    fn steady_profile_never_fluctuates() {
        let mut s = state(LinkProfile::steady(1e6, 1e6));
        for ns in (0..10).map(|i| i * 60_000_000_000) {
            s.maybe_resample(ns);
            assert_eq!(s.multiplier, 1.0);
        }
    }

    #[test]
    fn fluctuating_profile_has_unit_mean_multiplier() {
        let mut s = state(LinkProfile::new(1e6, 1e6).with_fluctuation(0.5, 0.0));
        let mut total = 0.0;
        let n = 20_000;
        for i in 1..=n {
            s.maybe_resample(i * 60_000_000_000);
            total += s.multiplier;
        }
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean multiplier {mean}");
    }

    #[test]
    fn fades_produce_deep_dips() {
        let mut s = state(LinkProfile::new(1e6, 1e6).with_fluctuation(0.3, 0.2));
        let mut min = f64::MAX;
        for i in 1..=2000u64 {
            s.maybe_resample(i * 60_000_000_000);
            min = min.min(s.multiplier);
        }
        assert!(min < 0.3, "expected at least one deep fade, min {min}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LinkProfile::new(0.0, 1.0);
    }
}
