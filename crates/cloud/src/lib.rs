//! # unidrive-cloud
//!
//! The minimal consumer-cloud-storage abstraction UniDrive builds on:
//! a [`CloudStore`] trait with exactly the five public RESTful Web API
//! operations every CCS offers third-party apps (paper §4) — upload,
//! download, create directory, list, delete — plus the backends and
//! decorators the reproduction needs:
//!
//! * [`MemCloud`] — instantaneous in-memory store (tests).
//! * [`SimCloud`] — a cloud behind a simulated network with fluctuating
//!   bandwidth, latency, size-dependent transient failures, degraded
//!   windows, quotas, and outage switches (the evaluation substrate).
//! * [`LocalDirCloud`] — a directory on disk (real-bytes examples).
//! * [`ChaosCloud`] / [`FaultPlan`] — deterministic scheduled fault
//!   injection (transient bursts, outages, quota exhaustion, latency
//!   spikes, torn uploads, delayed visibility) over any store.
//! * [`ThrottledCloud`], [`CountingCloud`] — composable decorators for
//!   bandwidth limiting and traffic accounting.
//! * [`ObservedCloud`] / [`CloudHealth`] / [`HealthBoard`] — the
//!   measurement decorator and per-cloud health scoreboard (EWMA
//!   latency, windowed error rate, availability state machine).
//! * [`Retry`] / [`RetryPolicy`] / [`RetryCloud`] — bounded-backoff
//!   retries for transient Web API failures, per call site or as a
//!   store decorator.
//! * [`TokenBucket`] / [`QpsSeries`] / [`QpsShaper`] — deterministic
//!   per-cloud request-rate shaping and accounting, shared by the
//!   fleet simulator and the store interface.
//! * [`CloudBuilder`] — composes the decorators above in one canonical
//!   order (base → qps → chaos → retry → observed).
//! * [`S3Cloud`] / [`MockS3`] — a real HTTP backend speaking the
//!   S3-compatible REST dialect over the std-only pooled
//!   [`http::HttpClient`], plus the in-process server the integration
//!   tests run it against.
//!
//! See the crate-level example on [`CloudStore`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
pub mod contract;
mod error;
pub mod fault;
pub mod health;
pub mod http;
mod local;
mod mem;
mod mock_s3;
mod observed;
mod qps;
mod retry;
mod s3;
mod sim_cloud;
mod store;
mod wrappers;

pub use builder::{shims, BuiltCloud, CloudBuilder};
pub use error::{CloudError, CloudOp};
pub use fault::{ChaosCloud, FaultEvent, FaultKind, FaultPlan};
pub use health::{
    CloudHealth, HealthBoard, HealthConfig, HealthState, HealthTracker, HealthTransition,
    WindowHealth,
};
pub use local::LocalDirCloud;
pub use mem::MemCloud;
pub use mock_s3::MockS3;
pub use observed::ObservedCloud;
pub use qps::{QpsSeries, QpsShaper, TokenBucket};
pub use retry::{Retry, RetryCloud, RetryPolicy};
pub use s3::{S3Cloud, S3Endpoint};
pub use sim_cloud::{FailureProfile, SimCloud, SimCloudConfig, TrafficCounters, TrafficSnapshot};
pub use store::{
    split_path, validate_path, CloudCaps, CloudId, CloudSet, CloudStore, ObjectInfo,
};
pub use wrappers::{CountingCloud, ThrottledCloud};
