//! Property-based tests of the content-defined chunker: the invariants
//! UniDrive's deduplication and update-traffic claims rest on.

use proptest::prelude::*;
use unidrive_chunker::{segment_bytes, ChunkerConfig};

fn config() -> ChunkerConfig {
    ChunkerConfig::new(4096)
}

proptest! {
    /// Segments tile the input exactly: contiguous, complete, in order.
    #[test]
    fn segments_tile_input(data in proptest::collection::vec(any::<u8>(), 0..60_000)) {
        let segs = segment_bytes(&data, &config());
        let mut pos = 0usize;
        for s in &segs {
            prop_assert_eq!(s.offset, pos);
            pos += s.len;
        }
        prop_assert_eq!(pos, data.len());
    }

    /// All segments except the final one respect the (0.5θ, 1.5θ] size
    /// bounds; the final one only the upper bound.
    #[test]
    fn segment_sizes_bounded(data in proptest::collection::vec(any::<u8>(), 0..60_000)) {
        let cfg = config();
        let segs = segment_bytes(&data, &cfg);
        for (i, s) in segs.iter().enumerate() {
            prop_assert!(s.len <= cfg.max_size());
            if i + 1 < segs.len() {
                prop_assert!(s.len >= cfg.min_size());
            }
        }
    }

    /// Segmentation is a pure function of the content.
    #[test]
    fn segmentation_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..30_000)) {
        prop_assert_eq!(segment_bytes(&data, &config()), segment_bytes(&data, &config()));
    }

    /// Digests identify content: identical slices <=> identical digests
    /// within one run (no accidental collisions on random data).
    #[test]
    fn digests_match_content(data in proptest::collection::vec(any::<u8>(), 0..30_000)) {
        let segs = segment_bytes(&data, &config());
        for s in &segs {
            let expect = unidrive_crypto::Sha1::digest(&data[s.range()]);
            prop_assert_eq!(s.digest, expect);
        }
    }

    /// Appending data never changes the digests of segments that end
    /// well before the appended region (the dedup-stability property).
    #[test]
    fn appends_preserve_early_segments(
        data in proptest::collection::vec(any::<u8>(), 20_000..40_000),
        tail in proptest::collection::vec(any::<u8>(), 1..5_000),
    ) {
        let cfg = config();
        let before = segment_bytes(&data, &cfg);
        let mut extended = data.clone();
        extended.extend_from_slice(&tail);
        let after = segment_bytes(&extended, &cfg);
        // Every 'before' segment except possibly the last two must
        // reappear verbatim (the tail can merge into the final segment,
        // and the forced max-size cut before it may shift once).
        if before.len() > 2 {
            for (b, a) in before[..before.len() - 2].iter().zip(&after) {
                prop_assert_eq!(b, a);
            }
        }
    }
}
