//! Minimal std-only HTTP/1.1 framing and a pooled blocking client.
//!
//! This is the transport under [`S3Cloud`](crate::S3Cloud) and the
//! in-process [`MockS3`](crate::MockS3) server. Both sides share the
//! same framing code (request/response head parsing, content-length
//! and chunked bodies), so the integration tests exercise exactly the
//! bytes a real S3-compatible endpoint would see — over real loopback
//! sockets, with zero external crates.
//!
//! The client keeps one connection pool per [`HttpClient`] (one
//! endpoint), sized by the data plane's `connections_per_cloud`.
//! Checkout parks on the runtime's [`Notifier`] eventcount (the PR 2
//! primitive) instead of spinning: a releasing request bumps the
//! generation and wakes every parked waiter, which re-checks the idle
//! list. Keep-alive reuse is transparent; a request that fails on a
//! *reused* connection is retried once on a fresh one, because a
//! keep-alive peer may have closed the socket between requests
//! (classic stale-connection race), while a failure on a fresh
//! connection is reported as-is.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use unidrive_sim::{Notifier, Runtime};

/// Longest accepted request/status/header line, in bytes. Lines beyond
/// this indicate a corrupt or hostile peer; the read fails cleanly.
const MAX_LINE: usize = 64 * 1024;
/// Maximum number of headers in one message head.
const MAX_HEADERS: usize = 128;
/// Socket read timeout: a hung peer surfaces as a timeout error (which
/// the cloud layer maps to a retryable transient) instead of wedging a
/// worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Bodies at or above this size are written with chunked
/// transfer-encoding by [`write_response`] when `chunked` is requested.
const CHUNK_SIZE: usize = 64 * 1024;

/// One parsed HTTP request (either side of the wire).
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `PUT`, `DELETE`, ...).
    pub method: String,
    /// Origin-form request target: percent-encoded path plus optional
    /// `?query`.
    pub target: String,
    /// Header name/value pairs in arrival order. Names are
    /// case-insensitive on lookup (see [`header`]).
    pub headers: Vec<(String, String)>,
    /// Decoded message body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A new request with no headers and an empty body.
    pub fn new(method: &str, target: &str) -> HttpRequest {
        HttpRequest {
            method: method.to_owned(),
            target: target.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Appends a header.
    pub fn header(mut self, name: &str, value: &str) -> HttpRequest {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: Vec<u8>) -> HttpRequest {
        self.body = body;
        self
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 404, 503, ...).
    pub status: u16,
    /// Reason phrase from the status line (informational only).
    pub reason: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded (de-chunked) message body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A new response with no headers and an empty body.
    pub fn new(status: u16, reason: &str) -> HttpResponse {
        HttpResponse {
            status,
            reason: reason.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Appends a header.
    pub fn header(mut self, name: &str, value: &str) -> HttpResponse {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: Vec<u8>) -> HttpResponse {
        self.body = body;
        self
    }
}

/// Case-insensitive header lookup (first match wins, as both our peers
/// emit each header at most once).
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn invalid(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("http: {what}"))
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(invalid("unexpected EOF inside line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| invalid("non-UTF-8 header line"))?;
                    return Ok(Some(s));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(invalid("header line too long"));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads a header block (terminated by an empty line).
fn read_headers<R: BufRead>(r: &mut R) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| invalid("EOF inside headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(invalid("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header line"))?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
}

/// Reads a body framed by the given headers: `Content-Length`, chunked
/// transfer-encoding, or (responses only, when `to_eof` is set) until
/// the peer closes the connection.
fn read_body<R: BufRead>(
    r: &mut R,
    headers: &[(String, String)],
    to_eof: bool,
) -> io::Result<Vec<u8>> {
    if let Some(te) = header(headers, "Transfer-Encoding") {
        if te.eq_ignore_ascii_case("chunked") {
            return read_chunked(r);
        }
        return Err(invalid("unsupported transfer-encoding"));
    }
    if let Some(cl) = header(headers, "Content-Length") {
        let len: usize = cl
            .parse()
            .map_err(|_| invalid("bad content-length"))?;
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        return Ok(body);
    }
    if to_eof {
        let mut body = Vec::new();
        r.read_to_end(&mut body)?;
        return Ok(body);
    }
    Ok(Vec::new())
}

/// Reads a chunked body: hex-sized chunks, a zero-size terminator, and
/// an (ignored) trailer section.
fn read_chunked<R: BufRead>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| invalid("EOF inside chunked body"))?;
        let size_part = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_part, 16)
            .map_err(|_| invalid("bad chunk size"))?;
        if size == 0 {
            // Trailers until the blank line.
            loop {
                match read_line(r)? {
                    Some(l) if l.is_empty() => return Ok(body),
                    Some(_) => {}
                    None => return Err(invalid("EOF inside trailers")),
                }
            }
        }
        let at = body.len();
        body.resize(at + size, 0);
        r.read_exact(&mut body[at..])?;
        let crlf = read_line(r)?.ok_or_else(|| invalid("EOF after chunk"))?;
        if !crlf.is_empty() {
            return Err(invalid("missing CRLF after chunk"));
        }
    }
}

/// Reads one request from a server-side connection. Returns `None` on
/// clean EOF before the request line (keep-alive peer went away).
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<HttpRequest>> {
    let line = match read_line(r)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?;
    let target = parts.next().ok_or_else(|| invalid("request line missing target"))?;
    let version = parts.next().ok_or_else(|| invalid("request line missing version"))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(invalid("unsupported HTTP version"));
    }
    let headers = read_headers(r)?;
    let body = read_body(r, &headers, false)?;
    Ok(Some(HttpRequest {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body,
    }))
}

/// Writes one request. `Content-Length` is always supplied by this
/// function; callers must not set framing headers themselves.
pub fn write_request<W: Write>(w: &mut W, req: &HttpRequest) -> io::Result<()> {
    let mut head = format!("{} {} HTTP/1.1\r\n", req.method, req.target);
    for (name, value) in &req.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", req.body.len()));
    w.write_all(head.as_bytes())?;
    w.write_all(&req.body)?;
    w.flush()
}

/// Reads one response from a client-side connection.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<HttpResponse> {
    let line = read_line(r)?.ok_or_else(|| invalid("EOF before status line"))?;
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("bad status line"));
    }
    let status: u16 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| invalid("bad status code"))?;
    let reason = parts.next().unwrap_or("").to_owned();
    let headers = read_headers(r)?;
    // 204 has no body by definition; everything else frames by headers.
    let body = if status == 204 {
        Vec::new()
    } else {
        let close = header(&headers, "Connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        let unframed = header(&headers, "Content-Length").is_none()
            && header(&headers, "Transfer-Encoding").is_none();
        read_body(r, &headers, close && unframed)?
    };
    Ok(HttpResponse {
        status,
        reason,
        headers,
        body,
    })
}

/// Writes one response. With `chunked` set, large bodies go out in
/// `Transfer-Encoding: chunked` frames (exercising the client's
/// de-chunking path); otherwise `Content-Length` framing is used.
/// Framing headers are always supplied by this function.
pub fn write_response<W: Write>(w: &mut W, resp: &HttpResponse, chunked: bool) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if resp.status == 204 {
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        return w.flush();
    }
    if chunked && !resp.body.is_empty() {
        head.push_str("Transfer-Encoding: chunked\r\n\r\n");
        w.write_all(head.as_bytes())?;
        for chunk in resp.body.chunks(CHUNK_SIZE) {
            write!(w, "{:x}\r\n", chunk.len())?;
            w.write_all(chunk)?;
            w.write_all(b"\r\n")?;
        }
        w.write_all(b"0\r\n\r\n")?;
    } else {
        head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
        w.write_all(head.as_bytes())?;
        w.write_all(&resp.body)?;
    }
    w.flush()
}

/// Percent-encodes one path for the request target: unreserved
/// characters and `/` pass through, everything else becomes `%XX`.
pub fn percent_encode_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for b in path.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-encodes one query-string value (`/` is also escaped).
pub fn percent_encode_query(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for b in value.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes `%XX` escapes (and `+` is left alone — we never emit it).
/// Invalid escapes pass through literally, matching lenient servers.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hi = (bytes[i + 1] as char).to_digit(16);
            let lo = (bytes[i + 2] as char).to_digit(16);
            if let (Some(hi), Some(lo)) = (hi, lo) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One pooled keep-alive connection.
struct Conn {
    reader: BufReader<TcpStream>,
    /// Whether this connection has already served at least one request
    /// (a failure on a reused connection is retried once; see module
    /// docs).
    reused: bool,
}

struct PoolState {
    idle: VecDeque<Conn>,
    /// Connections currently checked out or idle (never exceeds `max`).
    open: usize,
}

/// A blocking HTTP/1.1 client for one endpoint with a bounded
/// keep-alive connection pool.
pub struct HttpClient {
    addr: String,
    max: usize,
    notifier: Arc<dyn Notifier>,
    state: Mutex<PoolState>,
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap();
        f.debug_struct("HttpClient")
            .field("addr", &self.addr)
            .field("max", &self.max)
            .field("open", &state.open)
            .field("idle", &state.idle.len())
            .finish()
    }
}

impl HttpClient {
    /// A client for `addr` (`host:port`) holding at most `max`
    /// concurrent connections; callers beyond that park on the
    /// runtime's notifier until a connection frees up.
    pub fn new(rt: &Arc<dyn Runtime>, addr: &str, max: usize) -> HttpClient {
        HttpClient {
            addr: addr.to_owned(),
            max: max.max(1),
            notifier: rt.notifier(),
            state: Mutex::new(PoolState {
                idle: VecDeque::new(),
                open: 0,
            }),
        }
    }

    /// The endpoint this client talks to, as `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads its response, transparently
    /// checking a pooled connection out and back in. Retries exactly
    /// once, on a fresh connection, if a *reused* keep-alive
    /// connection fails mid-request.
    pub fn request(&self, req: &HttpRequest) -> io::Result<HttpResponse> {
        let mut conn = self.checkout()?;
        let was_reused = conn.reused;
        match self.roundtrip(&mut conn, req) {
            Ok(resp) => {
                self.check_in(conn, &resp);
                Ok(resp)
            }
            Err(first) => {
                self.discard();
                if !was_reused {
                    return Err(first);
                }
                // Stale keep-alive socket: the server may have closed
                // it between requests. One fresh attempt.
                let mut fresh = self.checkout_fresh()?;
                match self.roundtrip(&mut fresh, req) {
                    Ok(resp) => {
                        self.check_in(fresh, &resp);
                        Ok(resp)
                    }
                    Err(e) => {
                        self.discard();
                        Err(e)
                    }
                }
            }
        }
    }

    fn roundtrip(&self, conn: &mut Conn, req: &HttpRequest) -> io::Result<HttpResponse> {
        write_request(conn.reader.get_mut(), req)?;
        read_response(&mut conn.reader)
    }

    fn connect(&self) -> io::Result<Conn> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::with_capacity(64 * 1024, stream),
            reused: false,
        })
    }

    /// Checks a connection out of the pool: an idle one if available,
    /// a new one if below the cap, else parks on the notifier until a
    /// release wakes us.
    fn checkout(&self) -> io::Result<Conn> {
        loop {
            let seen = self.notifier.generation();
            {
                let mut state = self.state.lock().unwrap();
                if let Some(mut conn) = state.idle.pop_front() {
                    conn.reused = true;
                    return Ok(conn);
                }
                if state.open < self.max {
                    state.open += 1;
                    drop(state);
                    return match self.connect() {
                        Ok(conn) => Ok(conn),
                        Err(e) => {
                            self.discard();
                            Err(e)
                        }
                    };
                }
            }
            self.notifier.wait(seen);
        }
    }

    /// Opens a fresh connection for the stale-reuse retry. The failed
    /// connection's slot has already been released, so this takes a
    /// regular slot (and may briefly park like any checkout).
    fn checkout_fresh(&self) -> io::Result<Conn> {
        loop {
            let seen = self.notifier.generation();
            {
                let mut state = self.state.lock().unwrap();
                if state.open < self.max {
                    state.open += 1;
                } else if state.idle.pop_front().is_some() {
                    // Trade an idle (possibly equally stale) connection
                    // for a fresh one; `open` stays constant.
                } else {
                    drop(state);
                    self.notifier.wait(seen);
                    continue;
                }
            }
            return match self.connect() {
                Ok(conn) => Ok(conn),
                Err(e) => {
                    self.discard();
                    Err(e)
                }
            };
        }
    }

    /// Returns a connection to the idle list (keep-alive) or closes it
    /// if either side asked for `Connection: close`.
    fn check_in(&self, mut conn: Conn, resp: &HttpResponse) {
        let close = header(&resp.headers, "Connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        if close {
            self.discard();
            return;
        }
        conn.reused = true;
        let mut state = self.state.lock().unwrap();
        state.idle.push_back(conn);
        drop(state);
        self.notifier.notify_all();
    }

    /// Releases one connection slot without returning a connection.
    fn discard(&self) {
        let mut state = self.state.lock().unwrap();
        state.open = state.open.saturating_sub(1);
        drop(state);
        self.notifier.notify_all();
    }

    /// (test hook) Number of currently open connections.
    pub fn open_connections(&self) -> usize {
        self.state.lock().unwrap().open
    }

    /// (test hook) Number of idle pooled connections.
    pub fn idle_connections(&self) -> usize {
        self.state.lock().unwrap().idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip_content_length() {
        let req = HttpRequest::new("PUT", "/b/k%20ey")
            .header("Host", "x")
            .body(b"hello".to_vec());
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut r = BufReader::new(Cursor::new(wire));
        let parsed = read_request(&mut r).unwrap().unwrap();
        assert_eq!(parsed.method, "PUT");
        assert_eq!(parsed.target, "/b/k%20ey");
        assert_eq!(header(&parsed.headers, "host"), Some("x"));
        assert_eq!(parsed.body, b"hello");
        // Clean EOF after the request => keep-alive loop sees None.
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn response_roundtrip_plain_and_chunked() {
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for chunked in [false, true] {
            let resp = HttpResponse::new(200, "OK").body(body.clone());
            let mut wire = Vec::new();
            write_response(&mut wire, &resp, chunked).unwrap();
            let mut r = BufReader::new(Cursor::new(wire));
            let parsed = read_response(&mut r).unwrap();
            assert_eq!(parsed.status, 200);
            assert_eq!(parsed.body, body, "chunked={chunked}");
        }
    }

    #[test]
    fn response_204_has_no_body() {
        let resp = HttpResponse::new(204, "No Content");
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, false).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(!text.contains("Content-Length"), "{text}");
        let mut r = BufReader::new(Cursor::new(wire));
        let parsed = read_response(&mut r).unwrap();
        assert_eq!(parsed.status, 204);
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn percent_coding_roundtrips() {
        let path = "dir with space/näme%7E/file.bin";
        let enc = percent_encode_path(path);
        assert!(!enc.contains(' '), "{enc}");
        assert_eq!(percent_decode(&enc), path);
        assert_eq!(percent_encode_query("a/b c"), "a%2Fb%20c");
        assert_eq!(percent_decode("a%2Fb%20c"), "a/b c");
    }

    #[test]
    fn chunked_reader_rejects_garbage_sizes() {
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n".to_vec();
        let mut r = BufReader::new(Cursor::new(wire));
        assert!(read_response(&mut r).is_err());
    }
}
