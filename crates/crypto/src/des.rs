//! DES block cipher, implemented from FIPS 46-3.
//!
//! The paper states UniDrive's metadata file is "DES encrypted" before
//! replication to the clouds (§4). We implement exactly that. (DES's
//! 56-bit key is far below modern standards; it is reproduced here for
//! fidelity to the paper, and the metadata layer keeps the cipher
//! pluggable.)
//!
//! Bit-numbering follows the standard: tables index bits 1..=64 from the
//! most significant bit of the 64-bit block.

/// Initial permutation.
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (inverse of IP).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion of the 32-bit half-block to 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17,
    18, 19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// The eight S-boxes, each 4×16.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6,
        12, 11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2,
        4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0,
        1, 10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1,
        3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10,
        1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0,
        15, 10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7,
        1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1,
        13, 14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12,
        9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3,
        5, 12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8,
        1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5,
        6, 11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4,
        10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Permuted choice 1: 64-bit key to 56 bits.
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3,
    60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37,
    29, 21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2: 56 bits to the 48-bit round key.
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41,
    52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-rotation schedule per round.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// Applies `table` (1-based source bit indices from the MSB of a
/// `src_bits`-wide value) producing a `table.len()`-bit value.
fn permute(value: u64, src_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (value >> (src_bits - pos as u32)) & 1;
    }
    out
}

/// The DES block cipher with a fixed key schedule.
///
/// # Examples
///
/// ```
/// use unidrive_crypto::Des;
///
/// let des = Des::new([0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]);
/// let ct = des.encrypt_block([0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF]);
/// assert_eq!(ct, [0x85, 0xE8, 0x13, 0x54, 0x0F, 0x0A, 0xB4, 0x05]);
/// assert_eq!(des.decrypt_block(ct), [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF]);
/// ```
#[derive(Debug, Clone)]
pub struct Des {
    round_keys: [u64; 16],
}

impl Des {
    /// Builds the key schedule from an 8-byte key (parity bits ignored,
    /// per the standard).
    pub fn new(key: [u8; 8]) -> Self {
        let key64 = u64::from_be_bytes(key);
        let pc1 = permute(key64, 64, &PC1); // 56 bits
        let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
        let mut d = pc1 & 0x0FFF_FFFF;
        let mut round_keys = [0u64; 16];
        for (i, &shift) in SHIFTS.iter().enumerate() {
            c = ((c << shift) | (c >> (28 - shift as u32))) & 0x0FFF_FFFF;
            d = ((d << shift) | (d >> (28 - shift as u32))) & 0x0FFF_FFFF;
            round_keys[i] = permute((c << 28) | d, 56, &PC2); // 48 bits
        }
        Des { round_keys }
    }

    fn feistel(half: u32, round_key: u64) -> u32 {
        let expanded = permute(half as u64, 32, &E) ^ round_key; // 48 bits
        let mut out = 0u32;
        for (box_idx, sbox) in SBOX.iter().enumerate() {
            let six = ((expanded >> (42 - 6 * box_idx)) & 0x3F) as usize;
            let row = ((six & 0x20) >> 4) | (six & 1);
            let col = (six >> 1) & 0xF;
            out = (out << 4) | sbox[row * 16 + col] as u32;
        }
        permute(out as u64, 32, &P) as u32
    }

    fn crypt(&self, block: [u8; 8], decrypt: bool) -> [u8; 8] {
        let permuted = permute(u64::from_be_bytes(block), 64, &IP);
        let mut left = (permuted >> 32) as u32;
        let mut right = permuted as u32;
        for round in 0..16 {
            let rk = if decrypt {
                self.round_keys[15 - round]
            } else {
                self.round_keys[round]
            };
            let next_right = left ^ Self::feistel(right, rk);
            left = right;
            right = next_right;
        }
        // Note the halves swap before the final permutation.
        let preoutput = ((right as u64) << 32) | left as u64;
        permute(preoutput, 64, &FP).to_be_bytes()
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: [u8; 8]) -> [u8; 8] {
        self.crypt(block, false)
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: [u8; 8]) -> [u8; 8] {
        self.crypt(block, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_walkthrough_vector() {
        // The vector from the original "How DES works" walkthrough.
        let des = Des::new([0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]);
        let ct = des.encrypt_block([0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF]);
        assert_eq!(ct, [0x85, 0xE8, 0x13, 0x54, 0x0F, 0x0A, 0xB4, 0x05]);
    }

    #[test]
    fn nbs_known_answer_vectors() {
        // From the NBS/NIST known-answer test set.
        let cases: [([u8; 8], [u8; 8], [u8; 8]); 3] = [
            (
                // The classic "DES illustrated" example: encrypting
                // 0x8787878787878787 under this key yields all zeros.
                [0x0E, 0x32, 0x92, 0x32, 0xEA, 0x6D, 0x0D, 0x73],
                [0x87; 8],
                [0x00; 8],
            ),
            (
                [0x01; 8],
                [0x95, 0xF8, 0xA5, 0xE5, 0xDD, 0x31, 0xD9, 0x00],
                [0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            ),
            (
                [0x01; 8],
                [0x9D, 0x64, 0x55, 0x5A, 0x9A, 0x10, 0xB8, 0x52],
                [0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00, 0x00],
            ),
        ];
        for (key, pt, ct) in cases {
            let des = Des::new(key);
            assert_eq!(des.encrypt_block(pt), ct, "key {key:02x?}");
            assert_eq!(des.decrypt_block(ct), pt);
        }
    }

    #[test]
    fn round_trip_many_blocks() {
        let des = Des::new([7, 1, 8, 2, 8, 1, 8, 2]);
        for i in 0u64..256 {
            let pt = i.wrapping_mul(0x0123_4567_89AB_CDEF).to_be_bytes();
            assert_eq!(des.decrypt_block(des.encrypt_block(pt)), pt);
        }
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let a = Des::new([1; 8]).encrypt_block([42; 8]);
        let b = Des::new([2; 8]).encrypt_block([42; 8]);
        assert_ne!(a, b);
    }

    #[test]
    fn complementation_property() {
        // DES famously satisfies E_k(p) = !E_!k(!p).
        let key = [0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1];
        let pt = [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF];
        let not = |x: [u8; 8]| x.map(|b| !b);
        let normal = Des::new(key).encrypt_block(pt);
        let complemented = Des::new(not(key)).encrypt_block(not(pt));
        assert_eq!(not(normal), complemented);
    }
}
