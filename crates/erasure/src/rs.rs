//! Reed-Solomon erasure coding over GF(2⁸).
//!
//! UniDrive generates **non-systematic** parity blocks (paper §6.1): the
//! generator matrix contains no identity rows, so no stored block is a
//! verbatim slice of the original segment and a provider cannot read
//! plaintext out of the blocks it holds. Any `k` of the up-to-`n` blocks
//! reconstruct the segment (MDS property of Vandermonde matrices).
//!
//! Blocks are generated lazily by index: the scheduler asks for block 7
//! of a segment only when over-provisioning decides to send it.

use std::fmt;
use std::sync::OnceLock;

use unidrive_util::bytes::Bytes;

use crate::matrix::Matrix;
use crate::{gf256, RedundancyConfig};

/// How one generator-row coefficient multiplies a shard into the
/// output: nothing, a u64-wide XOR, or one product-table lookup per
/// byte. Built lazily once per row and cached on the [`Codec`], so the
/// two-lookup log/exp multiply leaves the encode inner loop entirely.
#[derive(Debug, Clone)]
enum CoeffKernel {
    Zero,
    One,
    Table(Box<gf256::MulTable>),
}

/// Shares smaller than this decode via the plain log/exp multiply; at
/// or above it, building a 256-byte product table per matrix entry
/// amortizes to a clear win.
const DECODE_TABLE_THRESHOLD: usize = 512;


/// Error from [`Codec`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Parameters out of range (`k` = 0, `k > n`, or `n > 255`).
    BadParameters {
        /// Total blocks requested.
        n: usize,
        /// Data blocks per segment.
        k: usize,
    },
    /// Fewer than `k` distinct shares supplied to `decode`.
    NotEnoughShares {
        /// Distinct shares supplied.
        have: usize,
        /// Shares required.
        need: usize,
    },
    /// The same block index appeared twice in `decode`.
    DuplicateShare {
        /// Offending index.
        index: usize,
    },
    /// A share index exceeds the code length.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Code length.
        n: usize,
    },
    /// Shares have inconsistent lengths.
    LengthMismatch,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadParameters { n, k } => {
                write!(f, "invalid code parameters n={n} k={k}")
            }
            CodecError::NotEnoughShares { have, need } => {
                write!(f, "need {need} shares to decode, have {have}")
            }
            CodecError::DuplicateShare { index } => {
                write!(f, "duplicate share index {index}")
            }
            CodecError::IndexOutOfRange { index, n } => {
                write!(f, "share index {index} out of range for code length {n}")
            }
            CodecError::LengthMismatch => write!(f, "shares have inconsistent lengths"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An `(n, k)` Reed-Solomon codec.
///
/// # Examples
///
/// ```
/// use unidrive_erasure::Codec;
///
/// # fn main() -> Result<(), unidrive_erasure::CodecError> {
/// let codec = Codec::non_systematic(10, 3)?;
/// let data = b"the quick brown fox jumps over the lazy dog";
/// // Generate blocks 0, 4 and 9 (any subset of the 10 possible).
/// let blocks: Vec<_> = [0usize, 4, 9]
///     .iter()
///     .map(|&i| (i, codec.encode_block(data, i)))
///     .collect();
/// let shares: Vec<(usize, &[u8])> =
///     blocks.iter().map(|(i, b)| (*i, b.as_ref())).collect();
/// let restored = codec.decode(&shares, data.len())?;
/// assert_eq!(&restored[..], &data[..]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Codec {
    n: usize,
    k: usize,
    generator: Matrix,
    systematic: bool,
    /// Lazily built per-row [`CoeffKernel`]s (one slot per block index).
    kernels: Vec<OnceLock<Vec<CoeffKernel>>>,
}

impl Codec {
    /// Creates a non-systematic codec: block `i` is the segment evaluated
    /// at Vandermonde point `i + 1`; no block is a plaintext shard.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadParameters`] if `k == 0`, `k > n`, or `n > 255`.
    pub fn non_systematic(n: usize, k: usize) -> Result<Self, CodecError> {
        Self::validate(n, k)?;
        let points: Vec<u8> = (1..=n as u16).map(|x| x as u8).collect();
        Ok(Codec {
            n,
            k,
            generator: Matrix::vandermonde(&points, k),
            systematic: false,
            kernels: (0..n).map(|_| OnceLock::new()).collect(),
        })
    }

    /// Creates a systematic codec (first `k` blocks are the plaintext
    /// shards) — used by the multi-cloud *benchmark* baseline, which does
    /// not impose UniDrive's security requirement.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadParameters`] as for
    /// [`non_systematic`](Codec::non_systematic).
    pub fn systematic(n: usize, k: usize) -> Result<Self, CodecError> {
        Self::validate(n, k)?;
        // Standard construction: V · V_top⁻¹ has an identity top block
        // and keeps the MDS property.
        let points: Vec<u8> = (1..=n as u16).map(|x| x as u8).collect();
        let v = Matrix::vandermonde(&points, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("vandermonde top block is invertible");
        Ok(Codec {
            n,
            k,
            generator: v.mul(&top_inv),
            systematic: true,
            kernels: (0..n).map(|_| OnceLock::new()).collect(),
        })
    }

    /// Creates the codec a [`RedundancyConfig`] implies: non-systematic
    /// with dimension `k` and the *full* GF(2⁸) length 255. Generator
    /// rows depend only on the block index and `k`, so blocks encoded
    /// under one cloud count stay decodable after clouds are added or
    /// removed; the scheduler, not the codec, enforces the
    /// configuration's `max_block_count`.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadParameters`] if `k` exceeds 255.
    pub fn for_config(config: &RedundancyConfig) -> Result<Self, CodecError> {
        Codec::non_systematic(255, config.k())
    }

    fn validate(n: usize, k: usize) -> Result<(), CodecError> {
        if k == 0 || k > n || n > 255 {
            Err(CodecError::BadParameters { n, k })
        } else {
            Ok(())
        }
    }

    /// Code length (maximum distinct blocks).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension (blocks needed to decode).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the first `k` blocks are plaintext shards.
    pub fn is_systematic(&self) -> bool {
        self.systematic
    }

    /// Length of each block for a segment of `data_len` bytes.
    pub fn block_len(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.k)
    }

    /// The cached multiply kernels for generator row `index`.
    fn row_kernels(&self, index: usize) -> &[CoeffKernel] {
        self.kernels[index].get_or_init(|| {
            self.generator
                .row(index)
                .iter()
                .map(|&c| match c {
                    0 => CoeffKernel::Zero,
                    1 => CoeffKernel::One,
                    c => CoeffKernel::Table(Box::new(gf256::mul_table(c))),
                })
                .collect()
        })
    }

    /// Encodes block `index` into `slot`, which must be zero-filled and
    /// exactly one block long. The first contributing shard
    /// *initializes* the slot (a copy or a straight table map) instead
    /// of accumulating into the zeroes, so freshly calloc-zeroed pages
    /// are written once, never read-modify-written.
    fn encode_block_into(&self, data: &[u8], index: usize, slot: &mut [u8]) {
        let len = slot.len();
        let mut initialized = false;
        for (j, kernel) in self.row_kernels(index).iter().enumerate() {
            let start = j * len;
            if start >= data.len() {
                break; // zero-padded shard contributes nothing
            }
            let end = (start + len).min(data.len());
            let shard = &data[start..end];
            let dst = &mut slot[..shard.len()];
            match kernel {
                CoeffKernel::Zero => continue,
                CoeffKernel::One if initialized => gf256::xor_slice(dst, shard),
                CoeffKernel::One => dst.copy_from_slice(shard),
                CoeffKernel::Table(t) if initialized => {
                    gf256::mul_add_slice_with_table(dst, shard, t);
                }
                CoeffKernel::Table(t) => gf256::mul_slice_with_table(dst, shard, t),
            }
            initialized = true;
        }
    }

    /// Generates block `index` (0-based) for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n` or `data` is empty.
    pub fn encode_block(&self, data: &[u8], index: usize) -> Bytes {
        assert!(index < self.n, "block index {index} out of range");
        assert!(!data.is_empty(), "cannot encode an empty segment");
        let len = self.block_len(data.len());
        let mut out = vec![0u8; len];
        self.encode_block_into(data, index, &mut out);
        Bytes::from(out)
    }

    /// Generates the given block indices for `data`, deriving the
    /// per-segment state (block length, row kernels) once and encoding
    /// the whole stripe into a single allocation; each returned block
    /// is a zero-copy window of it.
    ///
    /// # Panics
    ///
    /// As for [`encode_block`](Codec::encode_block).
    pub fn encode_blocks(&self, data: &[u8], indices: &[usize]) -> Vec<Bytes> {
        if indices.is_empty() {
            return Vec::new();
        }
        assert!(!data.is_empty(), "cannot encode an empty segment");
        let len = self.block_len(data.len());
        let mut stripe = vec![0u8; len * indices.len()];
        for (slot, &i) in stripe.chunks_exact_mut(len).zip(indices) {
            assert!(i < self.n, "block index {i} out of range");
            self.encode_block_into(data, i, slot);
        }
        let stripe = Bytes::from(stripe);
        (0..indices.len())
            .map(|j| stripe.slice(j * len..(j + 1) * len))
            .collect()
    }

    /// Reconstructs the original `data_len` bytes from at least `k`
    /// distinct `(block index, block bytes)` shares.
    ///
    /// # Errors
    ///
    /// See [`CodecError`]; notably
    /// [`NotEnoughShares`](CodecError::NotEnoughShares) when fewer than
    /// `k` distinct blocks are available — the security property when the
    /// shares come from fewer than `K_s` clouds.
    pub fn decode(&self, shares: &[(usize, &[u8])], data_len: usize) -> Result<Vec<u8>, CodecError> {
        let block_len = self.block_len(data_len);
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(self.k);
        let mut seen = vec![false; self.n];
        for &(idx, bytes) in shares {
            if idx >= self.n {
                return Err(CodecError::IndexOutOfRange { index: idx, n: self.n });
            }
            if seen[idx] {
                return Err(CodecError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
            if bytes.len() != block_len {
                return Err(CodecError::LengthMismatch);
            }
            if chosen.len() < self.k {
                chosen.push((idx, bytes));
            }
        }
        if chosen.len() < self.k {
            return Err(CodecError::NotEnoughShares {
                have: chosen.len(),
                need: self.k,
            });
        }
        let rows: Vec<usize> = chosen.iter().map(|&(i, _)| i).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .inverse()
            .expect("any k Vandermonde-derived rows are invertible");
        // shard_j = sum_i inv[j][i] * share_i
        let mut data = vec![0u8; self.k * block_len];
        for j in 0..self.k {
            let dst = &mut data[j * block_len..(j + 1) * block_len];
            for (i, &(_, share)) in chosen.iter().enumerate() {
                let c = inv.get(j, i);
                if c > 1 && block_len >= DECODE_TABLE_THRESHOLD {
                    gf256::mul_add_slice_with_table(dst, share, &gf256::mul_table(c));
                } else {
                    gf256::mul_add_slice(dst, share, c);
                }
            }
        }
        data.truncate(data_len);
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn round_trip_with_first_k_blocks() {
        let codec = Codec::non_systematic(10, 3).unwrap();
        let data = sample_data(1000);
        let blocks = codec.encode_blocks(&data, &[0, 1, 2]);
        let shares: Vec<(usize, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.as_ref()))
            .collect();
        assert_eq!(codec.decode(&shares, data.len()).unwrap(), data);
    }

    #[test]
    fn round_trip_with_any_k_blocks() {
        let codec = Codec::non_systematic(10, 3).unwrap();
        let data = sample_data(257); // not a multiple of k: exercises padding
        for combo in [[0usize, 5, 9], [7, 2, 4], [9, 8, 6], [1, 3, 5]] {
            let blocks = codec.encode_blocks(&data, &combo);
            let shares: Vec<(usize, &[u8])> = combo
                .iter()
                .zip(&blocks)
                .map(|(&i, b)| (i, b.as_ref()))
                .collect();
            assert_eq!(
                codec.decode(&shares, data.len()).unwrap(),
                data,
                "combo {combo:?}"
            );
        }
    }

    #[test]
    fn fewer_than_k_shares_reveal_nothing_decodable() {
        let codec = Codec::non_systematic(10, 3).unwrap();
        let data = sample_data(100);
        let blocks = codec.encode_blocks(&data, &[0, 1]);
        let shares: Vec<(usize, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.as_ref()))
            .collect();
        assert!(matches!(
            codec.decode(&shares, data.len()).unwrap_err(),
            CodecError::NotEnoughShares { have: 2, need: 3 }
        ));
    }

    #[test]
    fn non_systematic_blocks_differ_from_plaintext_shards() {
        let codec = Codec::non_systematic(10, 3).unwrap();
        let data = sample_data(300);
        let block_len = codec.block_len(data.len());
        for i in 0..10 {
            let block = codec.encode_block(&data, i);
            for j in 0..3 {
                let shard = &data[j * block_len..((j + 1) * block_len).min(data.len())];
                assert_ne!(&block[..shard.len()], shard, "block {i} leaks shard {j}");
            }
        }
    }

    #[test]
    fn systematic_codec_exposes_shards() {
        let codec = Codec::systematic(6, 2).unwrap();
        let data = sample_data(64);
        let b0 = codec.encode_block(&data, 0);
        let b1 = codec.encode_block(&data, 1);
        assert_eq!(&b0[..], &data[..32]);
        assert_eq!(&b1[..], &data[32..]);
        // And parity still decodes.
        let p = codec.encode_block(&data, 5);
        let shares: Vec<(usize, &[u8])> = vec![(5, p.as_ref()), (0, b0.as_ref())];
        assert_eq!(codec.decode(&shares, data.len()).unwrap(), data);
    }

    #[test]
    fn duplicate_and_out_of_range_shares_rejected() {
        let codec = Codec::non_systematic(5, 2).unwrap();
        let data = sample_data(10);
        let b = codec.encode_block(&data, 0);
        let dup: Vec<(usize, &[u8])> = vec![(0, b.as_ref()), (0, b.as_ref())];
        assert!(matches!(
            codec.decode(&dup, 10).unwrap_err(),
            CodecError::DuplicateShare { index: 0 }
        ));
        let oor: Vec<(usize, &[u8])> = vec![(9, b.as_ref())];
        assert!(matches!(
            codec.decode(&oor, 10).unwrap_err(),
            CodecError::IndexOutOfRange { index: 9, n: 5 }
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let codec = Codec::non_systematic(5, 2).unwrap();
        let data = sample_data(100);
        let b0 = codec.encode_block(&data, 0);
        let short = &b0[..10];
        let shares: Vec<(usize, &[u8])> = vec![(0, b0.as_ref()), (1, short)];
        assert!(matches!(
            codec.decode(&shares, 100).unwrap_err(),
            CodecError::LengthMismatch
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(Codec::non_systematic(0, 0).is_err());
        assert!(Codec::non_systematic(3, 4).is_err());
        assert!(Codec::non_systematic(256, 3).is_err());
        assert!(Codec::non_systematic(255, 255).is_ok());
    }

    #[test]
    fn paper_config_codec_round_trip() {
        let cfg = RedundancyConfig::paper_default();
        let codec = Codec::for_config(&cfg).unwrap();
        assert_eq!(codec.n(), 255);
        assert_eq!(codec.k(), 3);
        let data = sample_data(4 * 1024 * 1024); // one θ-sized segment
        // Decode from one over-provisioned + two normal blocks.
        let combo = [9usize, 0, 4];
        let blocks = codec.encode_blocks(&data, &combo);
        let shares: Vec<(usize, &[u8])> = combo
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        assert_eq!(codec.decode(&shares, data.len()).unwrap(), data);
    }

    #[test]
    fn tiny_segments_encode() {
        let codec = Codec::non_systematic(10, 3).unwrap();
        for len in [1usize, 2, 3, 4, 5] {
            let data = sample_data(len);
            let combo = [2usize, 6, 8];
            let blocks = codec.encode_blocks(&data, &combo);
            assert_eq!(blocks[0].len(), codec.block_len(len));
            let shares: Vec<(usize, &[u8])> = combo
                .iter()
                .zip(&blocks)
                .map(|(&i, b)| (i, b.as_ref()))
                .collect();
            assert_eq!(codec.decode(&shares, len).unwrap(), data, "len {len}");
        }
    }
}
