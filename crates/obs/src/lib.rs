//! # unidrive-obs
//!
//! Observability substrate for the UniDrive reproduction: a cheap,
//! thread-safe **metrics registry** (counters, gauges, log-bucketed
//! histograms), a ring-buffered **structured event trace**, and
//! **scoped timers** — all timestamped through an installable clock so
//! that under the simulation's virtual time the full export is
//! *deterministic*: the same seed produces a byte-identical snapshot.
//!
//! ## Design
//!
//! Instrumented code holds an [`Obs`] handle. The handle is either a
//! no-op (the default — every call returns immediately without
//! touching shared state) or backed by a shared [`Registry`]. This
//! keeps the disabled cost at a branch on an `Option`, and lets tests
//! and bench binaries opt in per component without any global state,
//! so parallel tests never share a registry by accident.
//!
//! ```
//! use unidrive_obs::{Obs, Registry};
//!
//! let obs = Obs::with_registry(Registry::new());
//! obs.inc("blocks_uploaded");
//! obs.observe("upload_block_bytes", 4 << 20);
//! let snap = obs.snapshot().unwrap();
//! assert_eq!(snap.counter("blocks_uploaded"), 1);
//! assert!(snap.to_json().contains("blocks_uploaded"));
//! ```
//!
//! Timestamps come from the registry clock, which components install
//! (`registry.set_clock(move || rt.now().as_nanos())`). The default
//! clock returns 0 so that even an unclocked registry stays
//! deterministic — nothing in this crate ever reads wall time.

#![warn(missing_docs)]

mod export;
mod metrics;
mod series;
mod span;
mod trace;

pub use export::{histogram_json, Snapshot};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use series::{
    SeriesBank, SeriesCell, SeriesEntry, SeriesHandle, SeriesKind, SeriesSnapshot, TimeSeries,
    WindowStat, DEFAULT_SERIES_WINDOW_NS,
};
pub use span::{SpanId, SpanRecord, DEFAULT_SPAN_CAPACITY};
pub use trace::{Event, FieldValue, TracedEvent, DEFAULT_TRACE_CAPACITY};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The shared clock: nanoseconds since some epoch (virtual or real).
pub type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Central store for metrics and the event trace. Shared via
/// [`Obs::with_registry`]; all methods take `&self` and are
/// thread-safe.
pub struct Registry {
    clock: Mutex<ClockFn>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    trace: trace::TraceRing,
    dropped_events: AtomicU64,
    spans: span::SpanRing,
    next_span: AtomicU64,
    dropped_spans: AtomicU64,
    /// Windowed-series rollup interval in ns; 0 = series disabled.
    series_window_ns: AtomicU64,
    series: Mutex<BTreeMap<(String, String), Arc<SeriesCell>>>,
}

impl Registry {
    /// A registry with the default trace capacity and a zero clock.
    pub fn new() -> Arc<Registry> {
        Registry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A registry whose event ring and span ring each keep at most
    /// `capacity` entries (oldest dropped first; drops are counted
    /// deterministically).
    pub fn with_trace_capacity(capacity: usize) -> Arc<Registry> {
        Arc::new(Registry {
            clock: Mutex::new(Arc::new(|| 0)),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            trace: trace::TraceRing::new(capacity),
            dropped_events: AtomicU64::new(0),
            spans: span::SpanRing::new(capacity),
            next_span: AtomicU64::new(1),
            dropped_spans: AtomicU64::new(0),
            series_window_ns: AtomicU64::new(0),
            series: Mutex::new(BTreeMap::new()),
        })
    }

    /// Installs the time source used to stamp events and timers.
    /// Under simulation pass the virtual clock
    /// (`move || rt.now().as_nanos()`) so traces are reproducible.
    pub fn set_clock(&self, clock: impl Fn() -> u64 + Send + Sync + 'static) {
        *lockp(&self.clock) = Arc::new(clock);
    }

    /// Current time in nanoseconds according to the installed clock.
    pub fn now_ns(&self) -> u64 {
        let clock = lockp(&self.clock).clone();
        clock()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Appends `event` to the trace, stamped with the installed clock.
    pub fn record(&self, event: Event) {
        let t_ns = self.now_ns();
        if self.trace.push(TracedEvent { t_ns, event }) {
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Allocates a fresh span id (monotonic, never 0).
    pub fn alloc_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Appends a completed span to the span ring.
    pub fn record_span(&self, span: SpanRecord) {
        if self.spans.push(span) {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Turns on windowed-series collection at `window_ns` rollup
    /// intervals (use [`DEFAULT_SERIES_WINDOW_NS`] unless an
    /// experiment needs finer grain). Until this is called, every
    /// `series_*` recording method is a cheap no-op, so instrumented
    /// code can emit series unconditionally.
    pub fn enable_series(&self, window_ns: u64) {
        self.series_window_ns
            .store(window_ns.max(1), Ordering::Relaxed);
    }

    /// Whether windowed-series collection is on.
    pub fn series_enabled(&self) -> bool {
        self.series_window_ns.load(Ordering::Relaxed) != 0
    }

    /// The series cell for `(metric, label)`, created on first use;
    /// `None` while series collection is disabled. The `kind` of the
    /// first caller wins.
    pub fn series_cell(
        &self,
        metric: &str,
        label: &str,
        kind: SeriesKind,
    ) -> Option<Arc<SeriesCell>> {
        let window_ns = self.series_window_ns.load(Ordering::Relaxed);
        if window_ns == 0 {
            return None;
        }
        let mut map = lockp(&self.series);
        if let Some(cell) = map.get(&(metric.to_owned(), label.to_owned())) {
            return Some(Arc::clone(cell));
        }
        let cell = Arc::new(SeriesCell::new(kind, window_ns));
        map.insert((metric.to_owned(), label.to_owned()), Arc::clone(&cell));
        Some(cell)
    }

    /// Records into series `(metric, label)` stamped with the
    /// installed clock. No-op while series collection is disabled.
    pub fn series_record(&self, metric: &str, label: &str, kind: SeriesKind, value: u64) {
        if let Some(cell) = self.series_cell(metric, label, kind) {
            cell.record(self.now_ns(), value);
        }
    }

    /// Sorted snapshot of every windowed series (empty when disabled).
    pub fn series_snapshot(&self) -> SeriesSnapshot {
        let window_ns = self.series_window_ns.load(Ordering::Relaxed);
        let map = lockp(&self.series);
        SeriesSnapshot {
            window_ns: if window_ns == 0 {
                DEFAULT_SERIES_WINDOW_NS
            } else {
                window_ns
            },
            entries: map
                .iter()
                .map(|((metric, label), cell)| {
                    let (kind, windows) = cell.view();
                    SeriesEntry {
                        metric: metric.clone(),
                        label: label.clone(),
                        kind,
                        windows,
                    }
                })
                .collect(),
        }
    }

    /// A consistent, sorted snapshot of every metric and the trace.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lockp(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lockp(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lockp(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events: self.trace.drain_copy(),
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
            spans: self.spans.drain_copy(),
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
        }
    }
}

fn lockp<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn get_or_insert<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut map = lockp(map);
    if let Some(v) = map.get(name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    map.insert(name.to_owned(), Arc::clone(&v));
    v
}

/// Cheap-clone instrumentation handle: either no-op (default) or
/// backed by a [`Registry`]. Every method is a single `Option` branch
/// in the no-op case.
#[derive(Clone, Default)]
pub struct Obs {
    registry: Option<Arc<Registry>>,
}

impl Obs {
    /// The disabled handle; all operations are no-ops.
    pub fn noop() -> Obs {
        Obs { registry: None }
    }

    /// A handle recording into `registry`.
    pub fn with_registry(registry: Arc<Registry>) -> Obs {
        Obs {
            registry: Some(registry),
        }
    }

    /// Whether a registry is installed.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Increments counter `name` by 1.
    #[inline]
    pub fn inc(&self, name: &str) {
        if let Some(r) = &self.registry {
            r.counter(name).add(1);
        }
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Sets gauge `name` to `value`.
    #[inline]
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(r) = &self.registry {
            r.gauge(name).set(value);
        }
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.registry {
            r.histogram(name).record(value);
        }
    }

    /// Appends `event` to the trace. The closure only runs when a
    /// registry is installed, so building the event is free when
    /// disabled.
    #[inline]
    pub fn event(&self, make: impl FnOnce() -> Event) {
        if let Some(r) = &self.registry {
            r.record(make());
        }
    }

    /// Starts a scoped timer; on drop the elapsed clock time is
    /// recorded into histogram `name` (nanoseconds). No-op (and
    /// allocation-free) when disabled.
    #[inline]
    pub fn timer(&self, name: &str) -> TimerGuard {
        match &self.registry {
            Some(r) => TimerGuard {
                inner: Some((Arc::clone(r), r.histogram(name), r.now_ns())),
            },
            None => TimerGuard { inner: None },
        }
    }

    /// Opens a causal span named `name` under `parent` (`None` starts
    /// a root span). The returned guard records the span into the
    /// registry's span ring when dropped (or ended explicitly); start
    /// and end are stamped through the installed clock. No-op and
    /// allocation-free when disabled.
    #[inline]
    pub fn span(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard {
        match &self.registry {
            Some(r) => SpanGuard {
                inner: Some(SpanGuardInner {
                    id: r.alloc_span_id().0,
                    parent: parent.map_or(0, |p| p.0),
                    name,
                    track: 0,
                    start_ns: r.now_ns(),
                    attrs: Vec::new(),
                    registry: Arc::clone(r),
                }),
            },
            None => SpanGuard { inner: None },
        }
    }

    /// Adds `n` to the windowed counter series `(metric, label)` at
    /// the current clock time. No-op unless the registry is installed
    /// *and* [`Registry::enable_series`] was called.
    #[inline]
    pub fn series_add(&self, metric: &str, label: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.series_record(metric, label, SeriesKind::Counter, n);
        }
    }

    /// Records `value` into the windowed sample series
    /// `(metric, label)` at the current clock time. No-op unless the
    /// registry is installed and series collection is enabled.
    #[inline]
    pub fn series_observe(&self, metric: &str, label: &str, value: u64) {
        if let Some(r) = &self.registry {
            r.series_record(metric, label, SeriesKind::Sample, value);
        }
    }

    /// Pre-resolved series handle for hot loops: no map lookup per
    /// record. No-op when the registry or series collection is off.
    pub fn series_handle(&self, metric: &str, label: &str, kind: SeriesKind) -> SeriesHandle {
        SeriesHandle {
            inner: self.registry.as_ref().and_then(|r| {
                r.series_cell(metric, label, kind)
                    .map(|cell| (Arc::clone(r), cell))
            }),
        }
    }

    /// Pre-resolved counter for hot paths: one atomic add per call,
    /// no map lookup. No-op when disabled.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        CounterHandle {
            inner: self.registry.as_ref().map(|r| r.counter(name)),
        }
    }

    /// Snapshot of the backing registry, if enabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.registry.as_ref().map(|r| r.snapshot())
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Scope guard returned by [`Obs::timer`]; records elapsed nanoseconds
/// into its histogram when dropped.
pub struct TimerGuard {
    inner: Option<(Arc<Registry>, Arc<Histogram>, u64)>,
}

impl TimerGuard {
    /// Stops the timer early, recording now; otherwise drop records.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some((registry, hist, start)) = self.inner.take() {
            hist.record(registry.now_ns().saturating_sub(start));
        }
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

struct SpanGuardInner {
    id: u64,
    parent: u64,
    name: &'static str,
    track: u32,
    start_ns: u64,
    attrs: Vec<(&'static str, FieldValue)>,
    registry: Arc<Registry>,
}

/// Scope guard returned by [`Obs::span`]: an open span. Dropping it
/// (or calling [`end`](SpanGuard::end)) stamps the end time and
/// records the completed span.
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// This span's id, for parenting children (`None` when disabled).
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|i| SpanId(i.id))
    }

    /// Sets the display lane used by the Chrome-trace export (`tid`).
    pub fn set_track(&mut self, track: u32) {
        if let Some(i) = &mut self.inner {
            i.track = track;
        }
    }

    /// The display lane (0 when unset or disabled).
    pub fn track(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.track)
    }

    /// Attaches an unsigned-integer attribute.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(i) = &mut self.inner {
            i.attrs.push((key, FieldValue::U(value)));
        }
    }

    /// Attaches a string attribute. The value is only materialized
    /// when the span is enabled.
    pub fn attr_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(i) = &mut self.inner {
            i.attrs.push((key, FieldValue::S(value.into())));
        }
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(&mut self, key: &'static str, value: bool) {
        if let Some(i) = &mut self.inner {
            i.attrs.push((key, FieldValue::B(value)));
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let end_ns = i.registry.now_ns();
            i.registry.record_span(SpanRecord {
                id: i.id,
                parent: i.parent,
                name: i.name,
                track: i.track,
                start_ns: i.start_ns,
                end_ns,
                attrs: i.attrs,
            });
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("id", &self.inner.as_ref().map(|i| i.id))
            .finish()
    }
}

/// Pre-resolved counter handle for hot loops (see
/// [`Obs::counter_handle`]).
#[derive(Clone, Default)]
pub struct CounterHandle {
    inner: Option<Arc<Counter>>,
}

impl CounterHandle {
    /// Increments by 1 (no-op when disabled).
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.inner {
            c.add(1);
        }
    }

    /// Adds `n` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing() {
        let obs = Obs::noop();
        obs.inc("x");
        obs.observe("h", 5);
        let _t = obs.timer("t");
        obs.event(|| panic!("must not be called"));
        let mut s = obs.span("noop", None);
        assert_eq!(s.id(), None);
        s.attr_u64("k", 1);
        s.end();
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn spans_nest_and_stamp_through_the_clock() {
        let reg = Registry::new();
        let t = Arc::new(AtomicU64::new(100));
        let t2 = Arc::clone(&t);
        reg.set_clock(move || t2.load(Ordering::SeqCst));
        let obs = Obs::with_registry(Arc::clone(&reg));

        let mut root = obs.span("sync.round", None);
        root.attr_str("device", "dev-a");
        let mut child = obs.span("engine.batch", root.id());
        child.set_track(3);
        child.attr_u64("blocks", 5);
        t.store(250, Ordering::SeqCst);
        child.end();
        t.store(400, Ordering::SeqCst);
        drop(root);

        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // The ring holds spans in end order: child first.
        let (child, root) = (&snap.spans[0], &snap.spans[1]);
        assert_eq!(child.name, "engine.batch");
        assert_eq!(child.parent, root.id);
        assert_eq!((child.start_ns, child.end_ns), (100, 250));
        assert_eq!(child.track, 3);
        assert_eq!((root.start_ns, root.end_ns), (100, 400));
        assert_eq!(root.parent, 0);
        assert_eq!(root.attr("device"), Some(&FieldValue::S("dev-a".into())));
        assert_eq!(snap.dropped_spans, 0);
    }

    #[test]
    fn span_ring_eviction_is_counted() {
        let reg = Registry::with_trace_capacity(2);
        let obs = Obs::with_registry(Arc::clone(&reg));
        for _ in 0..3 {
            obs.span("s", None).end();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 1);
        // Ids keep increasing even across evictions.
        assert_eq!(snap.spans[0].id, 2);
        assert_eq!(snap.spans[1].id, 3);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let obs = Obs::with_registry(Registry::new());
        obs.add("c", 3);
        obs.inc("c");
        obs.set_gauge("g", 2.5);
        obs.observe("h", 100);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("c"), 4);
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn timer_uses_installed_clock() {
        let reg = Registry::new();
        let t = Arc::new(AtomicU64::new(1_000));
        let t2 = Arc::clone(&t);
        reg.set_clock(move || t2.load(Ordering::SeqCst));
        let obs = Obs::with_registry(Arc::clone(&reg));
        {
            let _guard = obs.timer("lat");
            t.store(3_500, Ordering::SeqCst);
        }
        let h = reg.snapshot().histogram("lat").unwrap().clone();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 2_500);
    }

    #[test]
    fn concurrent_counters_do_not_lose_increments() {
        let obs = Obs::with_registry(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    let hot = obs.counter_handle("hot");
                    for _ in 0..10_000 {
                        hot.inc();
                        obs.inc("cold");
                        obs.observe("hist", 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("hot"), 80_000);
        assert_eq!(snap.counter("cold"), 80_000);
        assert_eq!(snap.histogram("hist").unwrap().count, 80_000);
    }

    #[test]
    fn series_are_noop_until_enabled_then_stamp_through_the_clock() {
        let reg = Registry::new();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        reg.set_clock(move || t2.load(Ordering::SeqCst));
        let obs = Obs::with_registry(Arc::clone(&reg));

        // Disabled: recording is a no-op, handles are inert.
        obs.series_add("ops", "c0", 1);
        let dead = obs.series_handle("lat", "c0", SeriesKind::Sample);
        dead.record(99);
        assert!(!reg.series_enabled());
        assert!(reg.series_snapshot().entries.is_empty());

        reg.enable_series(1_000);
        obs.series_add("ops", "c0", 2);
        t.store(2_500, Ordering::SeqCst);
        obs.series_add("ops", "c0", 3);
        let lat = obs.series_handle("lat", "c0", SeriesKind::Sample);
        lat.record(40);

        let snap = reg.series_snapshot();
        assert_eq!(snap.window_ns, 1_000);
        let ops = snap.entry("ops", "c0").unwrap();
        assert_eq!(ops.kind, SeriesKind::Counter);
        assert_eq!(
            ops.windows
                .iter()
                .map(|w| (w.index, w.stat.sum))
                .collect::<Vec<_>>(),
            vec![(0, 2), (2, 3)]
        );
        let lat = snap.entry("lat", "c0").unwrap();
        assert_eq!(lat.kind, SeriesKind::Sample);
        assert_eq!(lat.windows[0].stat.p50(), 40);
        // The export path is exercised end to end.
        assert!(snap.to_json().contains("\"ops\""));
    }

    #[test]
    fn events_are_stamped_and_ordered() {
        let reg = Registry::new();
        let obs = Obs::with_registry(Arc::clone(&reg));
        reg.set_clock(|| 42);
        obs.event(|| Event::RetryAttempt {
            op: "upload".into(),
            attempt: 2,
            backoff_ns: 7,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].t_ns, 42);
    }
}
